//! DPP contour: the traditional filter's marching cubes replaced by the
//! [`dpp_marching_cubes`] primitive pipeline. Output is bit-identical to
//! [`crate::Contour`] (see the weld note in [`super::mc`]); what changes
//! is the *execution shape* the power model sees — case-table math in
//! `map` worklets, welding in `sort_by_key`/`reduce_by_key` traffic.

use super::mc::dpp_marching_cubes;
use super::primitives::DppTrace;
use crate::filter::{Filter, FilterOutput};
use vizmesh::{Association, CellSet, DataSet, Field, Vec3};

/// Contour over data-parallel primitives: same parameters as
/// [`crate::Contour`], same output bits, DPP execution.
#[derive(Debug, Clone)]
pub struct DppContour {
    pub field: String,
    pub isovalues: Vec<f64>,
}

impl DppContour {
    pub fn new(field: impl Into<String>, isovalues: Vec<f64>) -> Self {
        assert!(!isovalues.is_empty(), "contour needs at least one isovalue");
        DppContour {
            field: field.into(),
            isovalues,
        }
    }
}

impl Filter for DppContour {
    fn name(&self) -> &'static str {
        "Contour"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("contour expects a structured dataset");
        let values = input
            .point_scalars(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point scalar field '{}'", self.field));

        let mut trace = DppTrace::new();
        let mut points: Vec<Vec3> = Vec::new();
        let mut point_values: Vec<f64> = Vec::new();
        let mut cells = CellSet::new();
        for &iso in &self.isovalues {
            let mc = dpp_marching_cubes(&mut trace, grid, values, iso);
            let base = points.len() as u32;
            points.extend(mc.points);
            point_values.extend(mc.point_values);
            cells.append_shifted(&mc.triangles, base);
        }

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            self.field.clone(),
            Association::Points,
            point_values[..n].to_vec(),
        ));
        FilterOutput::data_with_primitives(ds, trace.kernel_reports(), trace.reports())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::Contour;
    use vizmesh::UniformGrid;

    fn sphere_dataset(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let c = grid.bounds().center();
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).distance(c))
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn dpp_contour_matches_traditional_bit_for_bit() {
        let ds = sphere_dataset(8);
        let isos = vec![0.2, 0.35];
        let trad = Contour::new("f", isos.clone()).execute(&ds);
        let dpp = DppContour::new("f", isos).execute(&ds);
        let (tp, tc) = trad.dataset.as_ref().unwrap().as_explicit().unwrap();
        let (dp, dc) = dpp.dataset.as_ref().unwrap().as_explicit().unwrap();
        assert_eq!(tp.len(), dp.len());
        for (a, b) in tp.iter().zip(dp) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(tc, dc);
        // The DPP run reports its primitive trail; the traditional one
        // doesn't.
        assert!(!dpp.primitives.is_empty());
        assert!(trad.primitives.is_empty());
        assert!(dpp.kernels.iter().any(|k| k.name == "dpp-sort-by-key"));
    }
}
