//! DPP three-slice: per plane, a signed-distance `map` over every mesh
//! point feeds the [`dpp_marching_cubes`] pipeline at isovalue 0, and a
//! second `map` samples the data field at the welded slice vertices —
//! the same arithmetic as the traditional filter in the same order, so
//! the output is **bit-identical** (the weld note in [`super::mc`]
//! covers why the vertex numbering matches).

use super::mc::dpp_marching_cubes;
use super::primitives::{self, DppTrace, PrimitiveOp};
use crate::filter::{Filter, FilterOutput};
use crate::slice::Plane;
use vizmesh::{Association, CellSet, DataSet, Field, Vec3};

/// Three-slice over data-parallel primitives: same parameters as
/// [`crate::ThreeSlice`], bit-identical output, DPP execution.
#[derive(Debug, Clone)]
pub struct DppSlice {
    pub planes: Vec<Plane>,
    pub field: String,
}

impl DppSlice {
    pub fn new(planes: Vec<Plane>, field: impl Into<String>) -> Self {
        assert!(!planes.is_empty(), "slice needs at least one plane");
        DppSlice {
            planes,
            field: field.into(),
        }
    }
}

impl Filter for DppSlice {
    fn name(&self) -> &'static str {
        "Slice"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("slice expects a structured dataset");
        let data = input.point_scalars(&self.field);
        let num_points = grid.num_points();
        let mut trace = DppTrace::new();

        let mut points: Vec<Vec3> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut cells = CellSet::new();
        for plane in &self.planes {
            // 1. map: signed distance per mesh point (the FP-dense part).
            let sdf: Vec<f64> = primitives::map_n(&mut trace, num_points, 24, |p| {
                plane.distance(grid.point_coord_id(p))
            });
            trace.record_flops(PrimitiveOp::Map, 18 * num_points as u64);

            // 2. the marching-cubes primitive pipeline at isovalue 0.
            let mc = dpp_marching_cubes(&mut trace, grid, &sdf, 0.0);

            // 3. map: sample the data field at the welded slice vertices
            // (same expression and order as the traditional filter).
            let sampled: Vec<f64> = primitives::map(&mut trace, &mc.points, |p| {
                data.and_then(|d| grid.sample_scalar(d, *p)).unwrap_or(0.0)
            });
            trace.record_flops(PrimitiveOp::Map, 22 * mc.points.len() as u64);

            let base = points.len() as u32;
            values.extend(sampled);
            points.extend(mc.points);
            cells.append_shifted(&mc.triangles, base);
        }

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            self.field.clone(),
            Association::Points,
            values[..n].to_vec(),
        ));
        FilterOutput::data_with_primitives(ds, trace.kernel_reports(), trace.reports())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::ThreeSlice;
    use vizmesh::UniformGrid;

    fn dataset(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn dpp_slice_matches_traditional_bit_for_bit() {
        let ds = dataset(6);
        let trad = ThreeSlice::centered(&ds, "f").execute(&ds);
        let planes = ThreeSlice::centered(&ds, "f").planes;
        let dpp = DppSlice::new(planes, "f").execute(&ds);
        let t = trad.dataset.unwrap();
        let d = dpp.dataset.unwrap();
        let (tp, tc) = t.as_explicit().unwrap();
        let (dp, dc) = d.as_explicit().unwrap();
        assert_eq!(tp.len(), dp.len());
        for (a, b) in tp.iter().zip(dp) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(tc, dc);
        assert_eq!(t.point_scalars("f").unwrap(), d.point_scalars("f").unwrap());
        assert!(!dpp.primitives.is_empty());
    }
}
