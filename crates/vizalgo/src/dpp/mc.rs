//! Marching cubes re-expressed over the primitive vocabulary: the
//! classify → count → scan → compact → generate → sort/reduce weld
//! pipeline of Bethel et al. (arXiv:2010.02361) / VTK-m, shared by the
//! DPP contour and slice filters.
//!
//! The weld is engineered to be **bit-identical** to the traditional
//! first-sight hash weld in [`crate::contour::marching_cubes`]: corner
//! emissions are flattened in the traditional raster order, pairs
//! `(edge key, emission index)` are tuple-sorted so each key segment's
//! minimum payload is its *first* emission, and distinct keys are then
//! ranked by that first-emission index — reproducing the traditional
//! id assignment (and first-sight interpolated position) exactly.

use super::primitives::{self, DppTrace, PrimitiveOp};
use crate::arena::pack_edge;
use crate::contour::{triangle_table, CaseTriangles, EDGES};
use vizmesh::{CellSet, CellShape, UniformGrid, Vec3};

/// Geometry of one DPP marching-cubes pass (work lives in the trace).
pub struct DppMcOutput {
    pub points: Vec<Vec3>,
    pub triangles: CellSet,
    /// Interpolated secondary values (the isovalue, as in the
    /// traditional formulation).
    pub point_values: Vec<f64>,
}

/// Run the DPP marching-cubes pipeline over a point-centered scalar.
pub fn dpp_marching_cubes(
    trace: &mut DppTrace,
    grid: &UniformGrid,
    values: &[f64],
    isovalue: f64,
) -> DppMcOutput {
    assert_eq!(
        values.len(),
        grid.num_points(),
        "marching cubes needs a point-centered scalar"
    );
    let table = triangle_table();
    let num_cells = grid.num_cells();

    // 1. map: corner configuration per cell (8 corner loads + compares).
    let configs: Vec<u8> = primitives::map_n(trace, num_cells, 64 + 32, |c| {
        let ids = grid.cell_point_ids(c);
        let mut config = 0u8;
        for (bit, &pid) in ids.iter().enumerate() {
            if values[pid] > isovalue {
                config |= 1 << bit;
            }
        }
        config
    });
    trace.record_flops(PrimitiveOp::Map, 8 * num_cells as u64);

    // 2. map: output triangle count per cell (case-table lookup).
    let tri_counts: Vec<u32> =
        primitives::map(trace, &configs, |&cfg| table[cfg as usize].len() as u32);

    // 3. inclusive scan: output offsets; the total sizes every
    // downstream array exactly (the DPP answer to dynamic output).
    let offsets = primitives::inclusive_scan(trace, &tri_counts);
    let total = offsets.last().copied().unwrap_or(0) as usize;

    // 4. compact: the active cells (those emitting geometry).
    let flags: Vec<bool> = primitives::map(trace, &tri_counts, |&c| c > 0);
    let active = primitives::compact_indices(trace, &flags);

    // 5. generate: each active cell interpolates its case's corner
    // positions and edge keys directly into the scan-offset slots — a
    // map worklet with a counting scatter for its output.
    let mut keys: Vec<u64> = vec![0; 3 * total];
    let mut pos: Vec<Vec3> = vec![Vec3::ZERO; 3 * total];
    emit_triangles(
        grid,
        values,
        isovalue,
        table,
        &configs,
        &active,
        &tri_counts,
        &offsets,
        &mut keys,
        &mut pos,
    );
    trace.record(
        PrimitiveOp::Map,
        active.len() as u64,
        (active.len() * (64 + 32 + 8)) as u64,
        0,
    );
    // Traditional interp counts 14 flops per emitted corner.
    trace.record_flops(PrimitiveOp::Map, 14 * 3 * total as u64);
    trace.record(
        PrimitiveOp::Scatter,
        3 * total as u64,
        0,
        (3 * total * (8 + 24)) as u64,
    );

    // 6. weld: tuple-sort (key, emission index) pairs, collapse each key
    // segment to its first emission, rank distinct keys by it.
    let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(3 * total);
    for (i, &k) in keys.iter().enumerate() {
        pairs.push((k, i as u32));
    }
    primitives::sort_by_key(trace, &mut pairs);
    let uniq = primitives::reduce_by_key(trace, &pairs, |a: u32, b: u32| a.min(b));

    // Rank segments in first-emission order: sorting (first emission,
    // segment) tuples reproduces the traditional first-sight ids.
    let mut order: Vec<(u64, u32)> = Vec::with_capacity(uniq.len());
    for (seg, &(_, rep)) in uniq.iter().enumerate() {
        order.push((rep as u64, seg as u32));
    }
    primitives::sort_by_key(trace, &mut order);
    let ranks: Vec<u32> = primitives::map_n(trace, order.len(), 0, |r| r as u32);
    let segs: Vec<u32> = primitives::map(trace, &order, |&(_, s)| s);
    let mut rank_of_seg: Vec<u32> = vec![0; uniq.len()];
    primitives::scatter(trace, &ranks, &segs, &mut rank_of_seg);

    // Welded points: gather each ranked segment's first-emission
    // position (bit-identical to the traditional first-sight push).
    let reps: Vec<u32> = primitives::map(trace, &order, |&(rep, _)| rep as u32);
    let points: Vec<Vec3> = primitives::gather(trace, &pos, &reps);
    let point_values: Vec<f64> = primitives::map(trace, &reps, |_| isovalue);

    // Scatter each corner emission's point id back into raster order.
    let mut corner_ids: Vec<u32> = vec![0; 3 * total];
    scatter_corner_ranks(&pairs, &rank_of_seg, &mut corner_ids);
    trace.record(
        PrimitiveOp::Scatter,
        pairs.len() as u64,
        12 * pairs.len() as u64,
        4 * pairs.len() as u64,
    );

    // 7. compact: assemble triangles, dropping degenerate ones (two
    // case edges welding to the same vertex), as the traditional weld
    // does after id assignment.
    let mut cells = CellSet::with_capacity(total, 3 * total);
    for t in 0..total {
        let tri = [
            corner_ids[3 * t],
            corner_ids[3 * t + 1],
            corner_ids[3 * t + 2],
        ];
        if tri[0] != tri[1] && tri[1] != tri[2] && tri[2] != tri[0] {
            cells.push(CellShape::Triangle, &tri);
        }
    }
    trace.record(
        PrimitiveOp::Compact,
        total as u64,
        12 * total as u64,
        12 * total as u64,
    );

    DppMcOutput {
        points,
        triangles: cells,
        point_values,
    }
}

/// The generate worklet body: interpolate case triangles of every active
/// cell into the scan-offset slots. Replicates the traditional per-cell
/// arithmetic exactly (same `t01` clamp, same lerp, same packed key).
#[allow(clippy::too_many_arguments)]
fn emit_triangles(
    grid: &UniformGrid,
    values: &[f64],
    isovalue: f64,
    table: &[CaseTriangles; 256],
    configs: &[u8],
    active: &[u32],
    tri_counts: &[u32],
    offsets: &[u32],
    keys: &mut [u64],
    pos: &mut [Vec3],
) {
    for &cell in active {
        let c = cell as usize;
        let ids = grid.cell_point_ids(c);
        let corners = grid.cell_corners(c);
        let mut slot = 3 * (offsets[c] - tri_counts[c]) as usize;
        for t in &table[configs[c] as usize] {
            for &e in t {
                let (a, b) = EDGES[e as usize];
                let (pa, pb) = (ids[a], ids[b]);
                let (va, vb) = (values[pa], values[pb]);
                let t01 = ((isovalue - va) / (vb - va)).clamp(0.0, 1.0);
                pos[slot] = corners[a].lerp(corners[b], t01);
                let (lo, hi) = if pa < pb { (pa, pb) } else { (pb, pa) };
                keys[slot] = pack_edge(lo as u32, hi as u32);
                slot += 1;
            }
        }
    }
}

/// Scatter each sorted pair's segment rank back to its emission slot.
/// Pairs are key-sorted, so the segment index advances on key change.
fn scatter_corner_ranks(pairs: &[(u64, u32)], rank_of_seg: &[u32], corner_ids: &mut [u32]) {
    let mut seg = 0usize;
    for (j, &(k, emission)) in pairs.iter().enumerate() {
        if j > 0 && pairs[j - 1].0 != k {
            seg += 1;
        }
        corner_ids[emission as usize] = rank_of_seg[seg];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::marching_cubes;

    fn sphere_values(grid: &UniformGrid) -> Vec<f64> {
        let c = grid.bounds().center();
        (0..grid.num_points())
            .map(|id| grid.point_coord_id(id).distance(c))
            .collect()
    }

    #[test]
    fn dpp_mc_is_bit_identical_to_traditional() {
        let grid = UniformGrid::cube_cells(10);
        let values = sphere_values(&grid);
        for iso in [0.15, 0.3, 0.45] {
            let trad = marching_cubes(&grid, &values, iso);
            let mut tr = DppTrace::new();
            let dpp = dpp_marching_cubes(&mut tr, &grid, &values, iso);
            assert_eq!(dpp.points.len(), trad.points.len(), "iso {iso}");
            for (a, b) in dpp.points.iter().zip(&trad.points) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.z.to_bits(), b.z.to_bits());
            }
            assert_eq!(dpp.point_values, trad.point_values);
            assert_eq!(dpp.triangles, trad.triangles, "iso {iso}");
        }
    }

    #[test]
    fn dpp_mc_empty_surface_uses_no_geometry() {
        let grid = UniformGrid::cube_cells(4);
        let values = sphere_values(&grid);
        let mut tr = DppTrace::new();
        let out = dpp_marching_cubes(&mut tr, &grid, &values, 100.0);
        assert!(out.points.is_empty());
        assert_eq!(out.triangles.iter().count(), 0);
        // The classify map still ran over every cell.
        let reports = tr.reports();
        assert!(reports
            .iter()
            .any(|r| r.op == PrimitiveOp::Map && r.counters.elements >= 64));
    }
}
