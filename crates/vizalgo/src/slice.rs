//! Three-slice (§III-B5): cut the dataset on the x-y, y-z and x-z planes.
//!
//! Exactly as the paper describes, each slice first creates a new
//! point-centered field holding the **signed distance** from the plane
//! (the compute-intensive part), then runs the contour algorithm on that
//! field at isovalue 0, yielding a topologically 2-D plane.

use crate::contour::marching_cubes;
use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rayon::prelude::*;
use vizmesh::{Association, CellSet, DataSet, Field, Vec3, WorkCounters};

/// An oriented plane `dot(n, p) = dot(n, origin)`.
#[derive(Debug, Clone, Copy)]
pub struct Plane {
    pub origin: Vec3,
    pub normal: Vec3,
}

impl Plane {
    pub fn new(origin: Vec3, normal: Vec3) -> Self {
        let n = normal.normalized();
        assert!(n != Vec3::ZERO, "plane normal must be non-zero");
        Plane { origin, normal: n }
    }

    /// Signed distance from the plane.
    #[inline]
    pub fn distance(&self, p: Vec3) -> f64 {
        self.normal.dot(p - self.origin)
    }
}

/// The three-slice filter: slices on the x-y, y-z, and x-z planes through
/// a common origin (the dataset center by default).
#[derive(Debug, Clone)]
pub struct ThreeSlice {
    pub planes: Vec<Plane>,
    /// Point field to interpolate onto the slices.
    pub field: String,
}

impl ThreeSlice {
    /// The paper's configuration: axis-aligned planes through the center
    /// of `input`.
    pub fn centered(input: &DataSet, field: impl Into<String>) -> Self {
        let c = input.bounds().center();
        ThreeSlice {
            planes: vec![
                Plane::new(c, Vec3::Z), // x-y plane
                Plane::new(c, Vec3::X), // y-z plane
                Plane::new(c, Vec3::Y), // x-z plane
            ],
            field: field.into(),
        }
    }

    pub fn with_planes(planes: Vec<Plane>, field: impl Into<String>) -> Self {
        assert!(!planes.is_empty(), "slice needs at least one plane");
        ThreeSlice {
            planes,
            field: field.into(),
        }
    }
}

impl Filter for ThreeSlice {
    fn name(&self) -> &'static str {
        "Slice"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("slice expects a structured dataset");
        let data = input.point_scalars(&self.field);
        let num_points = grid.num_points();

        let mut distance_work = WorkCounters::new();
        let mut classify = WorkCounters::new();
        let mut interp = WorkCounters::new();
        let mut points: Vec<Vec3> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut cells = CellSet::new();
        // One signed-distance buffer shared by all planes: refilled in
        // place each iteration instead of collected fresh.
        let mut sdf = vec![0.0f64; num_points];

        for plane in &self.planes {
            // Kernel 1: signed-distance field for every mesh point. The
            // paper notes this per-node computation is what makes slice
            // more compute-intensive than plain contour.
            sdf.par_iter_mut()
                .enumerate()
                .for_each(|(p, s)| *s = plane.distance(grid.point_coord_id(p)));
            distance_work.tally(num_points as u64, 30, 18, 24, 8);

            // Kernel 2+3: contour the distance field at zero.
            let mc = marching_cubes(grid, &sdf, 0.0);
            classify += mc.classify_work;
            interp += mc.interp_work;

            // Interpolate the data field onto the slice vertices.
            let base = points.len() as u32;
            values.extend(mc.points.iter().map(|p| {
                interp.tally(1, 46, 22, 96, 8);
                data.and_then(|d| grid.sample_scalar(d, *p)).unwrap_or(0.0)
            }));
            points.extend(mc.points);
            cells.append_shifted(&mc.triangles, base);
        }
        distance_work.working_set_bytes = (num_points * 8 * 2) as u64;

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            self.field.clone(),
            Association::Points,
            values[..n].to_vec(),
        ));
        FilterOutput::data(
            ds,
            vec![
                KernelReport::new("slice-distance", KernelClass::SignedDistance, distance_work),
                KernelReport::new("slice-classify", KernelClass::CaseTable, classify),
                KernelReport::new("slice-interpolate", KernelClass::Interpolate, interp),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::UniformGrid;

    fn dataset(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn plane_distance_signs() {
        let p = Plane::new(Vec3::splat(0.5), Vec3::Z);
        assert!(p.distance(Vec3::new(0.0, 0.0, 0.9)) > 0.0);
        assert!(p.distance(Vec3::new(0.0, 0.0, 0.1)) < 0.0);
        assert_eq!(p.distance(Vec3::new(7.0, -2.0, 0.5)), 0.0);
    }

    #[test]
    fn centered_slice_produces_three_planes_of_triangles() {
        let ds = dataset(8);
        let out = ThreeSlice::centered(&ds, "f").execute(&ds);
        let result = out.dataset.unwrap();
        assert!(result.num_cells() > 0);
        // Each output vertex must lie on one of the three center planes.
        let (points, _) = result.as_explicit().unwrap();
        for p in points {
            let on_plane =
                (p.z - 0.5).abs() < 1e-9 || (p.x - 0.5).abs() < 1e-9 || (p.y - 0.5).abs() < 1e-9;
            assert!(on_plane, "vertex {p:?} is on no slice plane");
        }
    }

    #[test]
    fn slice_area_matches_plane_cross_sections() {
        // Each axis plane cuts the unit cube with area 1; three slices
        // total about 3 (triangle tessellation is exact for planes).
        let ds = dataset(6);
        let out = ThreeSlice::centered(&ds, "f").execute(&ds);
        let result = out.dataset.unwrap();
        let (points, cells) = result.as_explicit().unwrap();
        let mut area = 0.0;
        for (_, t) in cells.iter() {
            let (a, b, c) = (
                points[t[0] as usize],
                points[t[1] as usize],
                points[t[2] as usize],
            );
            area += 0.5 * (b - a).cross(c - a).length();
        }
        assert!((area - 3.0).abs() < 1e-6, "area = {area}");
    }

    #[test]
    fn interpolated_field_matches_geometry() {
        // Field is x; on the y-z plane (x = 0.5) every vertex value is 0.5.
        let ds = dataset(6);
        let c = ds.bounds().center();
        let slice = ThreeSlice::with_planes(vec![Plane::new(c, Vec3::X)], "f");
        let out = slice.execute(&ds);
        let result = out.dataset.unwrap();
        for &v in result.point_scalars("f").unwrap() {
            assert!((v - 0.5).abs() < 1e-9, "value {v}");
        }
    }

    #[test]
    fn slice_outside_domain_is_empty() {
        let ds = dataset(4);
        let slice = ThreeSlice::with_planes(vec![Plane::new(Vec3::splat(10.0), Vec3::X)], "f");
        let out = slice.execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 0);
    }

    #[test]
    fn kernels_include_signed_distance() {
        let ds = dataset(4);
        let out = ThreeSlice::centered(&ds, "f").execute(&ds);
        assert_eq!(out.kernels[0].class, KernelClass::SignedDistance);
        // Distance evaluated at every point for each of 3 planes.
        assert_eq!(out.kernels[0].work.items, 3 * 125);
        // Slice does a contour per plane: classification visits every cell
        // three times.
        assert_eq!(out.kernels[1].work.items, 3 * 64);
    }

    #[test]
    #[should_panic]
    fn empty_plane_list_panics() {
        let _ = ThreeSlice::with_planes(vec![], "f");
    }
}
