//! Content fingerprints: the 48-bit FNV-1a construction behind
//! [`AlgorithmSpec::fingerprint`](crate::spec::AlgorithmSpec::fingerprint),
//! exposed as a reusable hasher, plus a dataset fingerprint over mesh
//! geometry and field payloads.
//!
//! The study service (`crates/service`) addresses cached results by
//! `(spec_fp, data_fp, cap, backend)`. The spec half has existed since
//! journal schema v4; this module supplies the data half with the same
//! properties: deterministic across runs and thread counts, 48 bits so
//! the value is exact in an `f64` journal arg, and derived from IEEE-754
//! bit patterns rather than any formatted representation, so two
//! datasets fingerprint equal iff their geometry and fields are
//! bit-identical.
//!
//! The hasher is incremental and allocation-free: a 256³ grid carries
//! hundreds of megabytes of field payload, and fingerprinting must not
//! clone or buffer it.

use vizmesh::dataset::Geometry;
use vizmesh::{DataSet, Field, FieldData, TimeWindow};

/// The 48-bit mask every fingerprint is reduced by: the largest width
/// that stays exact in an `f64`, so journals can carry fingerprints as
/// plain JSON numbers.
pub const FINGERPRINT_MASK: u64 = 0xFFFF_FFFF_FFFF;

/// Incremental 64-bit FNV-1a hasher. Feed byte slices with
/// [`Fnv1a::update`]; reduce to the journal-exact 48-bit form with
/// [`Fnv1a::finish48`].
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    /// Absorb a `u64` as little-endian bytes.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern (distinguishes
    /// `-0.0` from `0.0` and every NaN payload — bit-identity, not
    /// numeric equality).
    pub fn update_f64(&mut self, v: f64) {
        self.update_u64(v.to_bits());
    }

    /// The hash masked to 48 bits (exact in `f64`).
    pub fn finish48(&self) -> u64 {
        self.0 & FINGERPRINT_MASK
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// One-shot 48-bit FNV-1a of a byte slice — the exact construction of
/// [`AlgorithmSpec::fingerprint`](crate::spec::AlgorithmSpec::fingerprint).
pub fn fingerprint48(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish48()
}

/// 48-bit content fingerprint of a dataset: geometry (kind tag, grid
/// dims/origin/spacing or explicit points + connectivity) followed by
/// every field (name, association, payload bit patterns), in stored
/// order. Bit-identical datasets — and only those — fingerprint equal.
pub fn dataset_fingerprint(ds: &DataSet) -> u64 {
    let mut h = Fnv1a::new();
    match &ds.geometry {
        Geometry::Uniform(grid) => {
            h.update(b"uniform\0");
            let dims = grid.point_dims();
            h.update_u64(dims[0] as u64);
            h.update_u64(dims[1] as u64);
            h.update_u64(dims[2] as u64);
            let (o, s) = (grid.origin(), grid.spacing());
            h.update_f64(o.x);
            h.update_f64(o.y);
            h.update_f64(o.z);
            h.update_f64(s.x);
            h.update_f64(s.y);
            h.update_f64(s.z);
        }
        Geometry::Explicit { points, cells } => {
            h.update(b"explicit\0");
            h.update_u64(points.len() as u64);
            for p in points {
                h.update_f64(p.x);
                h.update_f64(p.y);
                h.update_f64(p.z);
            }
            h.update_u64(cells.num_cells() as u64);
            for cell in 0..cells.num_cells() {
                h.update_u64(cells.shape(cell) as u64);
                for &pt in cells.cell_points(cell) {
                    h.update_u64(u64::from(pt));
                }
            }
        }
    }
    h.update_u64(ds.fields.len() as u64);
    for field in &ds.fields {
        field_fingerprint_into(&mut h, field);
    }
    h.finish48()
}

/// 48-bit content fingerprint of a time window over a field series:
/// the snapshot count, then each in-view snapshot's time bit pattern
/// followed by its dataset fingerprint, in order. This is the
/// per-window `data_fp` for time-varying requests — two windows
/// fingerprint equal iff they hold bit-identical snapshots at
/// bit-identical times.
pub fn series_fingerprint(window: &TimeWindow<'_>) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"series\0");
    h.update_u64(window.len() as u64);
    for (t, ds) in window.snapshots() {
        h.update_f64(t);
        h.update_u64(dataset_fingerprint(ds));
    }
    h.finish48()
}

/// Absorb one field: name bytes, association tag, then every value's
/// bit pattern in storage order.
fn field_fingerprint_into(h: &mut Fnv1a, field: &Field) {
    h.update(field.name.as_bytes());
    h.update(b"\0");
    h.update_u64(field.association as u64);
    match &field.data {
        FieldData::Scalar(values) => {
            h.update(b"scalar\0");
            h.update_u64(values.len() as u64);
            for &v in values {
                h.update_f64(v);
            }
        }
        FieldData::Vector(values) => {
            h.update(b"vector\0");
            h.update_u64(values.len() as u64);
            for v in values {
                h.update_f64(v.x);
                h.update_f64(v.y);
                h.update_f64(v.z);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{Association, UniformGrid, Vec3};

    fn sample(n: usize, scale: f64) -> DataSet {
        let grid =
            UniformGrid::from_cell_dims([n, n, n], vizmesh::Aabb::new(Vec3::ZERO, Vec3::ONE));
        let num_points = grid.num_points();
        let values: Vec<f64> = (0..num_points).map(|i| i as f64 * scale).collect();
        DataSet::uniform(grid).with_field(Field::scalar("energy", Association::Points, values))
    }

    #[test]
    fn incremental_matches_one_shot() {
        let bytes = b"contour|field=energy|isovalues=spanning:10";
        let mut h = Fnv1a::new();
        h.update(&bytes[..7]);
        h.update(&bytes[7..]);
        assert_eq!(h.finish48(), fingerprint48(bytes));
    }

    #[test]
    fn matches_spec_fingerprint_construction() {
        let spec = crate::filter::Algorithm::Contour.default_spec();
        assert_eq!(
            spec.fingerprint(),
            fingerprint48(spec.canonical().as_bytes())
        );
    }

    #[test]
    fn dataset_fingerprint_is_stable_and_48_bit() {
        let a = dataset_fingerprint(&sample(4, 0.5));
        let b = dataset_fingerprint(&sample(4, 0.5));
        assert_eq!(a, b, "same content, same fingerprint");
        assert!(a <= FINGERPRINT_MASK, "fits in 48 bits");
        let exact = a as f64;
        assert_eq!(exact as u64, a, "exact in f64");
    }

    #[test]
    fn dataset_fingerprint_tracks_content() {
        let base = dataset_fingerprint(&sample(4, 0.5));
        assert_ne!(
            base,
            dataset_fingerprint(&sample(5, 0.5)),
            "geometry change moves the fingerprint"
        );
        assert_ne!(
            base,
            dataset_fingerprint(&sample(4, 0.25)),
            "field payload change moves the fingerprint"
        );
        let mut renamed = sample(4, 0.5);
        renamed.fields[0].name = "density".into();
        assert_ne!(
            base,
            dataset_fingerprint(&renamed),
            "field name change moves the fingerprint"
        );
    }

    #[test]
    fn series_fingerprint_tracks_snapshots_and_times() {
        use std::sync::Arc;
        use vizmesh::FieldSeries;
        let series_at = |times: &[f64], scale: f64| {
            let mut s = FieldSeries::with_capacity(8);
            for &t in times {
                s.record(t, Arc::new(sample(4, scale)));
            }
            s
        };
        let a = series_at(&[0.0, 1.0], 0.5);
        let fp = series_fingerprint(&a.full_window());
        assert_eq!(
            fp,
            series_fingerprint(&series_at(&[0.0, 1.0], 0.5).full_window()),
            "same content, same fingerprint"
        );
        assert!(fp <= FINGERPRINT_MASK);
        assert_ne!(
            fp,
            series_fingerprint(&series_at(&[0.0, 2.0], 0.5).full_window()),
            "snapshot time moves the fingerprint"
        );
        assert_ne!(
            fp,
            series_fingerprint(&series_at(&[0.0, 1.0], 0.25).full_window()),
            "snapshot payload moves the fingerprint"
        );
        assert_ne!(
            fp,
            series_fingerprint(&series_at(&[0.0], 0.5).full_window()),
            "window length moves the fingerprint"
        );
        // A narrowed window fingerprints differently from the full one.
        let long = series_at(&[0.0, 1.0, 2.0, 3.0], 0.5);
        assert_ne!(
            series_fingerprint(&long.window(0.0, 1.0)),
            series_fingerprint(&long.full_window())
        );
    }

    #[test]
    fn negative_zero_is_distinguished() {
        let mut pos = Fnv1a::new();
        pos.update_f64(0.0);
        let mut neg = Fnv1a::new();
        neg.update_f64(-0.0);
        assert_ne!(pos.finish48(), neg.finish48());
    }
}
