//! Volume rendering (§III-B8): ray marching with front-to-back
//! compositing.
//!
//! Rays step through the volume at regular intervals, sample the scalar
//! field trilinearly, map each sample through a transfer function, and
//! blend front to back with early termination — the classic image-order
//! volume renderer. Like ray tracing, the filter produces an image
//! database from cameras orbiting the data set.

use crate::colormap::ColorMap;
use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rayon::prelude::*;
use vizmesh::{Camera, DataSet, Image, WorkCounters};

/// The volume-rendering filter.
#[derive(Debug, Clone)]
pub struct VolumeRenderer {
    pub field: String,
    pub width: usize,
    pub height: usize,
    pub num_cameras: usize,
    /// Step length as a fraction of the cell diagonal (0.5 = half a cell).
    pub step_scale: f64,
    /// Per-sample opacity scale of the transfer function.
    pub opacity_scale: f64,
}

impl VolumeRenderer {
    /// The paper's configuration: 50 cameras.
    pub fn paper_default(field: impl Into<String>) -> Self {
        VolumeRenderer {
            field: field.into(),
            width: 128,
            height: 128,
            num_cameras: 50,
            step_scale: 0.8,
            opacity_scale: 0.35,
        }
    }

    pub fn new(field: impl Into<String>, width: usize, height: usize, num_cameras: usize) -> Self {
        assert!(width > 0 && height > 0 && num_cameras > 0);
        VolumeRenderer {
            field: field.into(),
            width,
            height,
            num_cameras,
            step_scale: 0.8,
            opacity_scale: 0.35,
        }
    }
}

impl Filter for VolumeRenderer {
    fn name(&self) -> &'static str {
        "Volume Rendering"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("volume rendering expects a structured dataset");
        let values = input
            .point_scalars(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point scalar field '{}'", self.field));
        let (lo, hi) = input
            .field(&self.field)
            .and_then(|f| f.scalar_range())
            .unwrap_or((0.0, 1.0));
        let tf = ColorMap::volume_default();
        let bounds = grid.bounds();
        let step = grid.spacing().length() * self.step_scale;
        let cameras = Camera::orbit(&bounds, self.num_cameras);

        let mut march_work = WorkCounters::new();
        let mut images = Vec::with_capacity(self.num_cameras);
        let width = self.width;
        // Per-row pixel buffers and sample counts, reused across every
        // camera: only the first camera pays the row allocations.
        let mut row_buf: Vec<(Vec<[f32; 4]>, u64)> = Vec::with_capacity(self.height);
        row_buf.resize_with(self.height, Default::default);
        for cam in &cameras {
            let mut img = Image::new(self.width, self.height);
            row_buf
                .par_iter_mut()
                .enumerate()
                .for_each(|(y, (row, samples))| {
                    *samples = 0;
                    row.clear();
                    row.extend((0..width).map(|x| {
                        let ray = cam.pixel_ray(x, y, width, self.height);
                        let inv = ray.inv_direction();
                        let Some((t0, t1)) =
                            bounds.intersect_ray(ray.origin, inv, 0.0, f64::INFINITY)
                        else {
                            return [0.0; 4];
                        };
                        let mut color = [0.0f32; 4];
                        let mut t = t0.max(0.0) + step * 0.5;
                        while t < t1 && color[3] < 0.99 {
                            if let Some(v) = grid.sample_scalar(values, ray.at(t)) {
                                *samples += 1;
                                let mut s = tf.sample_range(v, lo, hi);
                                s[3] = (s[3] * self.opacity_scale as f32).clamp(0.0, 1.0);
                                // Front-to-back "over" compositing.
                                let w = s[3] * (1.0 - color[3]);
                                color[0] += s[0] * w;
                                color[1] += s[1] * w;
                                color[2] += s[2] * w;
                                color[3] += w;
                            }
                            t += step;
                        }
                        color
                    }));
                });
            let mut samples = 0u64;
            for (y, (row, s)) in row_buf.iter().enumerate() {
                for (x, &c) in row.iter().enumerate() {
                    if c[3] > 0.0 {
                        img.set_if_closer(x, y, 0.0, c);
                    }
                }
                samples += s;
            }
            let rays = (self.width * self.height) as u64;
            march_work.tally(rays, 90, 40, 48, 16);
            // Per sample: trilinear gather (8 reads) + transfer function +
            // blend — the FP-dense loop that gives volume rendering the
            // highest IPC in the study.
            march_work.tally(samples, 150, 96, 64, 0);
            images.push(img);
        }
        march_work.working_set_bytes = (values.len() * 8) as u64;

        FilterOutput::rendered(
            images,
            vec![KernelReport::new(
                "volren-march",
                KernelClass::RayMarch,
                march_work,
            )],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{Association, Field, UniformGrid, Vec3};

    fn dataset(n: usize, hot_center: bool) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let c = grid.bounds().center();
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| {
                if hot_center {
                    (1.0 - 2.0 * grid.point_coord_id(p).distance(c)).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn hot_center_renders_nonempty_images() {
        let ds = dataset(8, true);
        let out = VolumeRenderer::new("f", 24, 24, 3).execute(&ds);
        assert_eq!(out.images.len(), 3);
        for img in &out.images {
            assert!(img.coverage() > 0.0, "nothing rendered");
            // The blob sits in the image center.
            assert!(img.get(12, 12)[3] > 0.0);
        }
    }

    #[test]
    fn uniform_zero_field_is_transparent() {
        // Transfer function maps the whole (degenerate) range to the map
        // middle, but a zero-range field normalizes to 0.5 with nonzero
        // opacity — instead check a field that maps to zero opacity:
        let grid = UniformGrid::cube_cells(4);
        let np = grid.num_points();
        let mut vals = vec![0.0; np];
        vals[0] = 1.0; // establish the range so 0 maps to opacity 0
        let ds = DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals));
        let out = VolumeRenderer::new("f", 16, 16, 1).execute(&ds);
        // Almost everything samples value 0 → zero opacity → coverage ≈ 0
        // except the single hot corner.
        assert!(out.images[0].coverage() < 0.2);
    }

    #[test]
    fn opacity_accumulates_monotonically() {
        let ds = dataset(8, true);
        let out = VolumeRenderer::new("f", 16, 16, 1).execute(&ds);
        for y in 0..16 {
            for x in 0..16 {
                let a = out.images[0].get(x, y)[3];
                assert!((0.0..=1.0).contains(&a), "alpha {a} out of range");
            }
        }
    }

    #[test]
    fn sample_count_scales_with_resolution() {
        let ds = dataset(8, true);
        let small = VolumeRenderer::new("f", 8, 8, 1).execute(&ds);
        let large = VolumeRenderer::new("f", 16, 16, 1).execute(&ds);
        assert!(
            large.kernels[0].work.items > 2 * small.kernels[0].work.items,
            "sample work must grow with pixels"
        );
    }

    #[test]
    fn working_set_is_the_volume() {
        let ds = dataset(8, true);
        let out = VolumeRenderer::new("f", 8, 8, 1).execute(&ds);
        assert_eq!(out.kernels[0].work.working_set_bytes, (9u64 * 9 * 9) * 8);
    }

    #[test]
    fn camera_outside_bounds_still_hits_volume() {
        let ds = dataset(6, true);
        let cams = Camera::orbit(&ds.bounds(), 4);
        for cam in cams {
            assert!(cam.position.distance(Vec3::splat(0.5)) > 0.9);
        }
        let out = VolumeRenderer::new("f", 12, 12, 4).execute(&ds);
        for img in &out.images {
            assert!(img.coverage() > 0.0);
        }
    }
}
