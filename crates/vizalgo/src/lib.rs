//! # vizalgo — the eight visualization algorithms
//!
//! From-scratch, shared-memory-parallel (rayon) implementations of the
//! eight algorithms the paper studies (§III-B), mirroring their VTK-m
//! counterparts:
//!
//! | module | algorithm | paper §III-B |
//! |---|---|---|
//! | [`contour`] | Marching-cubes isosurface (10 isovalues/cycle) | 1 |
//! | [`threshold`] | Cell filtering by scalar range | 2 |
//! | [`clip`] | Spherical clip with cell subdivision | 3 |
//! | [`isovolume`] | Scalar-range volume extraction | 4 |
//! | [`slice`] | Three axis-aligned slices via signed distance + contour | 5 |
//! | [`advection`] | RK4 particle advection → streamlines / pathlines | 6 |
//! | [`raytrace`] | External-face ray tracing with a BVH (50 images) | 7 |
//! | [`volren`] | Volume rendering by ray marching (50 images) | 8 |
//!
//! Every algorithm implements [`Filter`](filter::Filter) and reports the
//! work it performed as a list of per-kernel
//! [`KernelReport`](filter::KernelReport)s. The reports drive the
//! simulated-processor experiments in the `vizpower` crate; the *outputs*
//! (meshes, streamlines, images) are real and are validated by this
//! crate's tests.
//!
//! [`marching_tetra`] is an independent isosurface implementation used as
//! a cross-check oracle in property tests, and [`tetclip`] is the shared
//! tetrahedral clipping engine behind `clip` and `isovolume`. The
//! [`arena`] module holds the flat-arena primitives the kernel hot paths
//! share: packed-key vertex-welding maps and reusable clip scratch
//! buffers (see docs/PERFORMANCE.md for the policy they implement).
//!
//! The [`dpp`] module is the second execution backend: the same kernels
//! re-expressed over an instrumented data-parallel-primitive vocabulary
//! (map / scan / gather / scatter / compact / sort / reduce-by-key),
//! selectable per spec via [`Backend`] and
//! [`AlgorithmSpec::build_with`](spec::AlgorithmSpec::build_with) (see
//! docs/DPP.md).
//!
//! The [`registry`] module is the single source of truth describing the
//! eight algorithms (names, aliases, kernel taxonomy, cell-centered
//! flags), and [`spec`] carries the canonical serializable
//! [`AlgorithmSpec`](spec::AlgorithmSpec) plan layer —
//! [`AlgorithmSpec::build`](spec::AlgorithmSpec::build) is the
//! workspace's one sanctioned filter-construction site (enforced by the
//! `registry-dispatch` xtask lint; see docs/REGISTRY.md).

pub mod advection;
pub mod arena;
pub mod clip;
pub mod colormap;
pub mod contour;
pub mod dpp;
pub mod filter;
pub mod fingerprint;
pub mod gradient;
pub mod isovolume;
pub mod marching_tetra;
pub mod raytrace;
pub mod registry;
pub mod slice;
pub mod spec;
pub mod tetclip;
pub mod threshold;
pub mod volren;

pub use advection::{FlowMode, FlowScenario, ParticleAdvection, Seeding, StepControl, Termination};
pub use arena::{TetScratch, WeldMap};
pub use clip::SphericalClip;
pub use contour::Contour;
pub use dpp::{
    Backend, DppContour, DppIsovolume, DppSlice, DppThreshold, PrimitiveOp, PrimitiveReport,
};
pub use filter::{Algorithm, Filter, FilterOutput, KernelClass, KernelReport};
pub use fingerprint::{
    dataset_fingerprint, fingerprint48, series_fingerprint, Fnv1a, FINGERPRINT_MASK,
};
pub use gradient::Gradient;
pub use isovolume::Isovolume;
pub use raytrace::RayTracer;
pub use registry::{RegistryEntry, REGISTRY};
pub use slice::ThreeSlice;
pub use spec::{AlgorithmSpec, IsoValues, ScalarBand, SphereSpec};
pub use threshold::Threshold;
pub use volren::VolumeRenderer;
