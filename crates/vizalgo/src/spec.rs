//! The canonical, serializable algorithm plan: one [`AlgorithmSpec`]
//! per algorithm, the *only* sanctioned way to construct a filter.
//!
//! The paper's premise is that the same eight algorithms are driven
//! identically across every configuration of the study (§IV). Before
//! this module existed the workspace constructed filters in four
//! independently drifting places (the study driver, the in situ action
//! layer, the conformance suite, and the bench CLIs); now every
//! consumer describes *what* to run as a spec and [`AlgorithmSpec::build`]
//! is the single construction site (enforced by the `registry-dispatch`
//! xtask lint; the sequential re-implementations in
//! `conformance::reference` are the one allowlisted exception).
//!
//! Specs are serializable (the in situ `ascent_actions.json`-style
//! interface re-exports [`AlgorithmSpec`] as its `FilterSpec`) and carry
//! a deterministic [`fingerprint`](AlgorithmSpec::fingerprint) derived
//! from a serde-independent canonical encoding, so every journal span a
//! study/sweep/conformance run emits is attributable to an exact
//! parameterization (see docs/REGISTRY.md and docs/OBSERVABILITY.md).

use crate::advection::{FlowScenario, ParticleAdvection, StepControl, Termination};
use crate::clip::SphericalClip;
use crate::contour::Contour;
use crate::dpp::{Backend, DppContour, DppIsovolume, DppSlice, DppThreshold};
use crate::filter::{Algorithm, Filter};
use crate::isovolume::Isovolume;
use crate::raytrace::RayTracer;
use crate::slice::ThreeSlice;
use crate::threshold::Threshold;
use crate::volren::VolumeRenderer;
use serde::{Deserialize, Serialize};
use vizmesh::{DataSet, Vec3};

/// How a contour picks its isovalues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum IsoValues {
    /// `n` evenly spaced isovalues spanning the interior of the field
    /// range (the paper runs 10 per cycle).
    Spanning(usize),
    /// Explicit isovalues, in order.
    Explicit(Vec<f64>),
}

/// A scalar band, resolved against the data's field range at build time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScalarBand {
    /// Keep the upper `frac` fraction of the field range (the paper's
    /// energy threshold uses 0.5).
    UpperFraction(f64),
    /// The middle `frac` band of the field range (the paper's isovolume
    /// uses 0.5).
    MiddleBand(f64),
    /// An explicit `[min, max]` range, data independent.
    Range { min: f64, max: f64 },
}

/// A clip sphere, resolved against the data's bounds at build time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SphereSpec {
    /// Radius as a fraction of the dataset diagonal, centered in the
    /// bounds (the paper's framing sphere uses 0.3).
    RadiusFraction(f64),
    /// An explicit center and radius, data independent.
    Explicit { center: Vec3, radius: f64 },
}

/// The canonical plan for one of the paper's eight algorithms.
///
/// Data-dependent parameters (field ranges, dataset bounds) stay
/// symbolic ([`IsoValues::Spanning`], [`ScalarBand::UpperFraction`],
/// [`SphereSpec::RadiusFraction`], ...) and are resolved by
/// [`build`](AlgorithmSpec::build) against a concrete dataset, exactly
/// as the paper parameterizes its study (§IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum AlgorithmSpec {
    /// Marching-cubes isosurface (§III-B1).
    Contour {
        /// Point scalar field to contour.
        field: String,
        /// Isovalue selection.
        isovalues: IsoValues,
    },
    /// Cell filtering by scalar range (§III-B2).
    Threshold {
        /// Scalar field the range applies to.
        field: String,
        /// The kept band.
        band: ScalarBand,
    },
    /// Spherical clip with cell subdivision (§III-B3).
    SphericalClip {
        /// Point field carried through to the output.
        field: String,
        /// The clip sphere.
        sphere: SphereSpec,
    },
    /// Scalar-range volume extraction (§III-B4).
    Isovolume {
        /// Point scalar field the band applies to.
        field: String,
        /// The extracted band.
        band: ScalarBand,
    },
    /// Three centered axis-aligned slices (§III-B5).
    Slice {
        /// Point scalar field interpolated onto the slices.
        field: String,
    },
    /// RK4 particle advection → streamlines (§III-B6).
    ParticleAdvection {
        /// Point vector field to advect through.
        field: String,
        /// Number of seed particles.
        particles: usize,
        /// RK4 steps per particle.
        steps: usize,
        /// Step length in fractions of the domain diagonal.
        #[serde(default = "default_step_fraction")]
        step_fraction: f64,
        /// Seed for the particle placement.
        #[serde(default = "default_seed")]
        seed: u64,
        /// Flow mode × seeding × step control × termination. Defaults
        /// to the paper's steady streamline scenario; pre-scenario wire
        /// JSON parses unchanged.
        #[serde(default)]
        scenario: FlowScenario,
    },
    /// External-face ray tracing with a BVH (§III-B7).
    RayTracing {
        /// Scalar field colored onto the faces.
        field: String,
        /// Image width (pixels).
        width: usize,
        /// Image height (pixels).
        height: usize,
        /// Images (camera positions) per cycle; the paper renders 50.
        images: usize,
    },
    /// Volume rendering by ray marching (§III-B8).
    VolumeRendering {
        /// Scalar field sampled along the rays.
        field: String,
        /// Image width (pixels).
        width: usize,
        /// Image height (pixels).
        height: usize,
        /// Images (camera positions) per cycle; the paper renders 50.
        images: usize,
    },
}

/// The paper's RK4 step length (fractions of the domain diagonal).
fn default_step_fraction() -> f64 {
    5e-4
}

/// The paper-style advection seed.
fn default_seed() -> u64 {
    0x5eed_1234
}

impl AlgorithmSpec {
    /// Which of the eight algorithms this spec parameterizes.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            AlgorithmSpec::Contour { .. } => Algorithm::Contour,
            AlgorithmSpec::Threshold { .. } => Algorithm::Threshold,
            AlgorithmSpec::SphericalClip { .. } => Algorithm::SphericalClip,
            AlgorithmSpec::Isovolume { .. } => Algorithm::Isovolume,
            AlgorithmSpec::Slice { .. } => Algorithm::Slice,
            AlgorithmSpec::ParticleAdvection { .. } => Algorithm::ParticleAdvection,
            AlgorithmSpec::RayTracing { .. } => Algorithm::RayTracing,
            AlgorithmSpec::VolumeRendering { .. } => Algorithm::VolumeRendering,
        }
    }

    /// Instantiate the filter against a concrete dataset, resolving the
    /// data-dependent parameters (field ranges, bounds).
    ///
    /// This is the workspace's single filter-construction site; every
    /// driver (study, in situ, conformance, bench) goes through it.
    pub fn build(&self, input: &DataSet) -> Box<dyn Filter> {
        match self {
            AlgorithmSpec::Contour { field, isovalues } => match isovalues {
                IsoValues::Spanning(n) => Box::new(Contour::spanning(field.clone(), input, *n)),
                IsoValues::Explicit(values) => {
                    Box::new(Contour::new(field.clone(), values.clone()))
                }
            },
            AlgorithmSpec::Threshold { field, band } => match band {
                ScalarBand::UpperFraction(frac) => {
                    Box::new(Threshold::upper_fraction(field.clone(), input, *frac))
                }
                ScalarBand::MiddleBand(frac) => {
                    let (lo, hi) = middle_band(any_range(input, field), *frac);
                    Box::new(Threshold::new(field.clone(), lo, hi))
                }
                ScalarBand::Range { min, max } => {
                    Box::new(Threshold::new(field.clone(), *min, *max))
                }
            },
            AlgorithmSpec::SphericalClip { field, sphere } => {
                let mut clip = match sphere {
                    SphereSpec::RadiusFraction(frac) => {
                        let b = input.bounds();
                        SphericalClip::new(b.center(), b.diagonal() * frac.max(1e-6))
                    }
                    SphereSpec::Explicit { center, radius } => SphericalClip::new(*center, *radius),
                };
                clip.carry_field = field.clone();
                Box::new(clip)
            }
            AlgorithmSpec::Isovolume { field, band } => match band {
                ScalarBand::MiddleBand(frac) => {
                    Box::new(Isovolume::middle_band(field.clone(), input, *frac))
                }
                ScalarBand::UpperFraction(frac) => {
                    let (lo, hi) = point_range(input, field);
                    let cut = hi - (hi - lo) * frac.clamp(0.0, 1.0);
                    Box::new(Isovolume::new(field.clone(), cut, hi))
                }
                ScalarBand::Range { min, max } => {
                    Box::new(Isovolume::new(field.clone(), *min, *max))
                }
            },
            AlgorithmSpec::Slice { field } => Box::new(ThreeSlice::centered(input, field.clone())),
            AlgorithmSpec::ParticleAdvection {
                field,
                particles,
                steps,
                step_fraction,
                seed,
                scenario,
            } => Box::new(
                ParticleAdvection::new(field.clone(), *particles, *steps, *step_fraction, *seed)
                    .with_scenario(*scenario),
            ),
            AlgorithmSpec::RayTracing {
                field,
                width,
                height,
                images,
            } => Box::new(RayTracer::new(field.clone(), *width, *height, *images)),
            AlgorithmSpec::VolumeRendering {
                field,
                width,
                height,
                images,
            } => Box::new(VolumeRenderer::new(field.clone(), *width, *height, *images)),
        }
    }

    /// The paper-default spec for a CLI-style algorithm name (any alias
    /// [`Algorithm::parse`] accepts); `None` for unknown names.
    pub fn paper_default(name: &str) -> Option<AlgorithmSpec> {
        Algorithm::parse(name).map(Algorithm::default_spec)
    }

    /// A canonical, serde-independent encoding of the spec: stable
    /// across runs, platforms, and serializer changes. Floats are
    /// encoded by their IEEE-754 bit patterns, so the encoding is total
    /// and exact. This string — not the JSON form — defines the
    /// [`fingerprint`](AlgorithmSpec::fingerprint).
    pub fn canonical(&self) -> String {
        match self {
            AlgorithmSpec::Contour { field, isovalues } => {
                let iso = match isovalues {
                    IsoValues::Spanning(n) => format!("spanning:{n}"),
                    IsoValues::Explicit(values) => {
                        let hex: Vec<String> = values.iter().map(|v| f64_hex(*v)).collect();
                        format!("explicit:{}", hex.join(","))
                    }
                };
                format!("contour(field={field},isovalues={iso})")
            }
            AlgorithmSpec::Threshold { field, band } => {
                format!("threshold(field={field},band={})", band_canonical(band))
            }
            AlgorithmSpec::SphericalClip { field, sphere } => {
                let s = match sphere {
                    SphereSpec::RadiusFraction(frac) => {
                        format!("radius_fraction:{}", f64_hex(*frac))
                    }
                    SphereSpec::Explicit { center, radius } => format!(
                        "explicit:{},{},{},{}",
                        f64_hex(center.x),
                        f64_hex(center.y),
                        f64_hex(center.z),
                        f64_hex(*radius)
                    ),
                };
                format!("spherical_clip(field={field},sphere={s})")
            }
            AlgorithmSpec::Isovolume { field, band } => {
                format!("isovolume(field={field},band={})", band_canonical(band))
            }
            AlgorithmSpec::Slice { field } => format!("slice(field={field})"),
            AlgorithmSpec::ParticleAdvection {
                field,
                particles,
                steps,
                step_fraction,
                seed,
                scenario,
            } => {
                let mut base = format!(
                    "particle_advection(field={field},particles={particles},steps={steps},\
                     step_fraction={},seed={seed})",
                    f64_hex(*step_fraction)
                );
                // Appended only when non-default, so every pre-scenario
                // fingerprint (and hence every pinned cache key and
                // journal id) is unchanged.
                if !scenario.is_default() {
                    base.push_str(&scenario_canonical(scenario));
                }
                base
            }
            AlgorithmSpec::RayTracing {
                field,
                width,
                height,
                images,
            } => {
                format!("ray_tracing(field={field},width={width},height={height},images={images})")
            }
            AlgorithmSpec::VolumeRendering {
                field,
                width,
                height,
                images,
            } => format!(
                "volume_rendering(field={field},width={width},height={height},images={images})"
            ),
        }
    }

    /// Deterministic spec fingerprint: 48-bit FNV-1a over
    /// [`canonical`](AlgorithmSpec::canonical). 48 bits keep the value
    /// exactly representable as an `f64`, which is how it rides in
    /// journal span args (`spec_fp`, schema v4 — docs/OBSERVABILITY.md).
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint48(self.canonical().as_bytes())
    }

    /// [`build`](AlgorithmSpec::build) for a chosen execution
    /// [`Backend`]. `Traditional` is exactly `build`; `Dpp` constructs
    /// the data-parallel-primitives formulation (callers gate on
    /// [`Backend::supports`] first — four algorithms have one).
    ///
    /// This is the second sanctioned arm of the single construction
    /// site: the registry-dispatch lint knows the `Dpp*` constructors
    /// the same way it knows the traditional ones.
    pub fn build_with(&self, backend: Backend, input: &DataSet) -> Box<dyn Filter> {
        match backend {
            Backend::Traditional => self.build(input),
            Backend::Dpp => self.build_dpp(input),
        }
    }

    /// Construct the DPP formulation. Data-dependent parameters are
    /// resolved by the *traditional* constructor first and its resolved
    /// fields move into the DPP filter, so both backends always execute
    /// the same resolved plan (same isovalues, same band bounds, same
    /// planes).
    fn build_dpp(&self, input: &DataSet) -> Box<dyn Filter> {
        match self {
            AlgorithmSpec::Contour { field, isovalues } => {
                let t = match isovalues {
                    IsoValues::Spanning(n) => Contour::spanning(field.clone(), input, *n),
                    IsoValues::Explicit(values) => Contour::new(field.clone(), values.clone()),
                };
                Box::new(DppContour::new(t.field, t.isovalues))
            }
            AlgorithmSpec::Threshold { field, band } => {
                let t = match band {
                    ScalarBand::UpperFraction(frac) => {
                        Threshold::upper_fraction(field.clone(), input, *frac)
                    }
                    ScalarBand::MiddleBand(frac) => {
                        let (lo, hi) = middle_band(any_range(input, field), *frac);
                        Threshold::new(field.clone(), lo, hi)
                    }
                    ScalarBand::Range { min, max } => Threshold::new(field.clone(), *min, *max),
                };
                let mut dpp = DppThreshold::new(t.field, t.lo, t.hi);
                dpp.policy = t.policy;
                Box::new(dpp)
            }
            AlgorithmSpec::Isovolume { field, band } => {
                let t = match band {
                    ScalarBand::MiddleBand(frac) => {
                        Isovolume::middle_band(field.clone(), input, *frac)
                    }
                    ScalarBand::UpperFraction(frac) => {
                        let (lo, hi) = point_range(input, field);
                        let cut = hi - (hi - lo) * frac.clamp(0.0, 1.0);
                        Isovolume::new(field.clone(), cut, hi)
                    }
                    ScalarBand::Range { min, max } => Isovolume::new(field.clone(), *min, *max),
                };
                Box::new(DppIsovolume::new(t.field, t.lo, t.hi))
            }
            AlgorithmSpec::Slice { field } => {
                let t = ThreeSlice::centered(input, field.clone());
                Box::new(DppSlice::new(t.planes, t.field))
            }
            other => {
                // lint: infallible because callers gate on Backend::supports
                panic!("no dpp formulation of '{}'", other.algorithm().name())
            }
        }
    }

    /// The concrete advection kernel, for series (time-varying)
    /// execution: `ParticleAdvection::execute_series` lives outside the
    /// `dyn Filter` interface, so callers that advect through a
    /// [`vizmesh::FieldSeries`] need the concrete type. `None` for
    /// non-advection specs. This is the third sanctioned arm of the
    /// single construction site (next to `build` / `build_with`).
    pub fn build_flow(&self) -> Option<ParticleAdvection> {
        match self {
            AlgorithmSpec::ParticleAdvection {
                field,
                particles,
                steps,
                step_fraction,
                seed,
                scenario,
            } => Some(
                ParticleAdvection::new(field.clone(), *particles, *steps, *step_fraction, *seed)
                    .with_scenario(*scenario),
            ),
            _ => None,
        }
    }

    /// [`fingerprint`](AlgorithmSpec::fingerprint) for a backend:
    /// `Traditional` is bit-identical to `fingerprint()` (every pinned
    /// golden keeps its ids); other backends tag the canonical encoding
    /// so the same plan on a different backend is a distinct,
    /// content-addressable execution.
    pub fn fingerprint_with(&self, backend: Backend) -> u64 {
        match backend {
            Backend::Traditional => self.fingerprint(),
            Backend::Dpp => {
                let mut canon = self.canonical();
                canon.push_str("|backend=dpp");
                crate::fingerprint::fingerprint48(canon.as_bytes())
            }
        }
    }
}

impl Algorithm {
    /// The paper-default [`AlgorithmSpec`] for this algorithm: the §IV
    /// parameterization against the CloverLeaf fields (`energy` /
    /// `velocity`), 10 isovalues, 0.5 bands, a 0.3-diagonal framing
    /// sphere, 1000 × 1000 advection, and 128² × 50-image renders.
    pub fn default_spec(self) -> AlgorithmSpec {
        match self {
            Algorithm::Contour => AlgorithmSpec::Contour {
                field: "energy".into(),
                isovalues: IsoValues::Spanning(10),
            },
            Algorithm::Threshold => AlgorithmSpec::Threshold {
                field: "energy".into(),
                band: ScalarBand::UpperFraction(0.5),
            },
            Algorithm::SphericalClip => AlgorithmSpec::SphericalClip {
                field: "energy".into(),
                sphere: SphereSpec::RadiusFraction(0.3),
            },
            Algorithm::Isovolume => AlgorithmSpec::Isovolume {
                field: "energy".into(),
                band: ScalarBand::MiddleBand(0.5),
            },
            Algorithm::Slice => AlgorithmSpec::Slice {
                field: "energy".into(),
            },
            Algorithm::ParticleAdvection => AlgorithmSpec::ParticleAdvection {
                field: "velocity".into(),
                particles: 1000,
                steps: 1000,
                step_fraction: default_step_fraction(),
                seed: default_seed(),
                scenario: FlowScenario::default(),
            },
            Algorithm::RayTracing => AlgorithmSpec::RayTracing {
                field: "energy".into(),
                width: 128,
                height: 128,
                images: 50,
            },
            Algorithm::VolumeRendering => AlgorithmSpec::VolumeRendering {
                field: "energy".into(),
                width: 128,
                height: 128,
                images: 50,
            },
        }
    }
}

/// Canonical encoding of a non-default [`FlowScenario`], appended after
/// the base advection encoding. Never emitted for the default scenario,
/// which keeps every pre-scenario fingerprint byte-stable.
fn scenario_canonical(s: &FlowScenario) -> String {
    let step = match s.step_control {
        StepControl::Fixed => "fixed".to_string(),
        StepControl::Adaptive { tol } => format!("adaptive:{}", f64_hex(tol)),
    };
    let term = match s.termination {
        Termination::MaxSteps => "max_steps".to_string(),
        Termination::ExitDomain => "exit_domain".to_string(),
        Termination::MaxTime { t_end } => format!("max_time:{}", f64_hex(t_end)),
    };
    format!(
        "|scenario(mode={},seeding={},step={step},term={term})",
        s.mode.wire_name(),
        s.seeding.wire_name()
    )
}

/// Canonical encoding of a [`ScalarBand`].
fn band_canonical(band: &ScalarBand) -> String {
    match band {
        ScalarBand::UpperFraction(frac) => format!("upper_fraction:{}", f64_hex(*frac)),
        ScalarBand::MiddleBand(frac) => format!("middle_band:{}", f64_hex(*frac)),
        ScalarBand::Range { min, max } => format!("range:{},{}", f64_hex(*min), f64_hex(*max)),
    }
}

/// IEEE-754 bit pattern of a float, as fixed-width hex.
fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Scalar range of a field under any association (the lookup
/// [`Threshold::upper_fraction`] uses), defaulting to `[0, 1]`.
fn any_range(input: &DataSet, field: &str) -> (f64, f64) {
    input
        .field(field)
        .and_then(|f| f.scalar_range())
        .unwrap_or((0.0, 1.0))
}

/// Point-association scalar range (the lookup
/// [`Isovolume::middle_band`] uses), defaulting to `[0, 1]`.
fn point_range(input: &DataSet, field: &str) -> (f64, f64) {
    input
        .field_with(field, vizmesh::Association::Points)
        .and_then(|f| f.scalar_range())
        .unwrap_or((0.0, 1.0))
}

/// The middle `frac` band of a range.
fn middle_band((lo, hi): (f64, f64), frac: f64) -> (f64, f64) {
    let mid = (lo + hi) * 0.5;
    let half = (hi - lo) * frac.clamp(0.0, 1.0) * 0.5;
    (mid - half, mid + half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advection::{FlowMode, Seeding};
    use vizmesh::{Association, Field, UniformGrid};

    fn dataset() -> DataSet {
        let grid = UniformGrid::cube_cells(6);
        let np = grid.num_points();
        let vals: Vec<f64> = (0..np).map(|p| grid.point_coord_id(p).x).collect();
        DataSet::uniform(grid)
            .with_field(Field::scalar("energy", Association::Points, vals))
            .with_field(Field::vector(
                "velocity",
                Association::Points,
                vec![Vec3::X; np],
            ))
    }

    /// One spec per variant, exercising the data-independent arms too.
    fn every_variant() -> Vec<AlgorithmSpec> {
        let mut specs: Vec<AlgorithmSpec> =
            Algorithm::ALL.iter().map(|a| a.default_spec()).collect();
        specs.push(AlgorithmSpec::Contour {
            field: "energy".into(),
            isovalues: IsoValues::Explicit(vec![0.25, 0.5]),
        });
        specs.push(AlgorithmSpec::Threshold {
            field: "energy".into(),
            band: ScalarBand::Range { min: 0.2, max: 0.8 },
        });
        specs.push(AlgorithmSpec::SphericalClip {
            field: "energy".into(),
            sphere: SphereSpec::Explicit {
                center: Vec3::splat(0.5),
                radius: 0.3,
            },
        });
        specs.push(AlgorithmSpec::Isovolume {
            field: "energy".into(),
            band: ScalarBand::Range { min: 0.3, max: 0.6 },
        });
        specs.push(AlgorithmSpec::ParticleAdvection {
            field: "velocity".into(),
            particles: 9,
            steps: 12,
            step_fraction: 1e-3,
            seed: 7,
            scenario: FlowScenario {
                mode: FlowMode::Pathline,
                seeding: Seeding::SparseGrid,
                step_control: StepControl::Adaptive { tol: 1e-5 },
                termination: Termination::ExitDomain,
            },
        });
        specs
    }

    #[test]
    fn every_spec_builds_and_runs() {
        let ds = dataset();
        for spec in every_variant() {
            let filter = spec.build(&ds);
            assert_eq!(filter.name(), spec.algorithm().name());
            let out = filter.execute(&ds);
            assert!(
                !out.kernels.is_empty(),
                "{} produced no kernels",
                spec.canonical()
            );
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let specs = every_variant();
        for spec in &specs {
            assert_eq!(spec.fingerprint(), spec.clone().fingerprint());
            assert!(spec.fingerprint() <= 0xFFFF_FFFF_FFFF, "fits in 48 bits");
            let as_f64 = spec.fingerprint() as f64;
            assert_eq!(as_f64 as u64, spec.fingerprint(), "exact through f64");
        }
        let mut fps: Vec<u64> = specs.iter().map(AlgorithmSpec::fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), specs.len(), "no collisions across variants");
    }

    #[test]
    fn fingerprint_tracks_parameters() {
        let a = AlgorithmSpec::Contour {
            field: "energy".into(),
            isovalues: IsoValues::Spanning(10),
        };
        let b = AlgorithmSpec::Contour {
            field: "energy".into(),
            isovalues: IsoValues::Spanning(11),
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn build_with_traditional_is_build() {
        let ds = dataset();
        for spec in every_variant() {
            let a = spec.build(&ds).execute(&ds);
            let b = spec.build_with(Backend::Traditional, &ds).execute(&ds);
            assert_eq!(a.kernels.len(), b.kernels.len(), "{}", spec.canonical());
            assert!(
                b.primitives.is_empty(),
                "traditional journals no primitives"
            );
        }
    }

    #[test]
    fn build_with_dpp_covers_supported_kernels() {
        let ds = dataset();
        for spec in every_variant() {
            let alg = spec.algorithm();
            if !Backend::Dpp.supports(alg) {
                continue;
            }
            let filter = spec.build_with(Backend::Dpp, &ds);
            assert_eq!(filter.name(), alg.name(), "{}", spec.canonical());
            let out = filter.execute(&ds);
            assert!(
                !out.primitives.is_empty(),
                "{} on dpp journals primitive counters",
                spec.canonical()
            );
        }
    }

    #[test]
    fn fingerprint_with_tags_backend() {
        for spec in every_variant() {
            assert_eq!(
                spec.fingerprint_with(Backend::Traditional),
                spec.fingerprint(),
                "traditional fingerprints are unchanged"
            );
            let dpp = spec.fingerprint_with(Backend::Dpp);
            assert_ne!(dpp, spec.fingerprint(), "{}", spec.canonical());
            assert!(dpp <= 0xFFFF_FFFF_FFFF, "fits in 48 bits");
        }
    }

    #[test]
    fn paper_default_accepts_aliases_and_rejects_unknown() {
        for (alias, algorithm) in [
            ("contour", Algorithm::Contour),
            ("spherical_clip", Algorithm::SphericalClip),
            ("volren", Algorithm::VolumeRendering),
            ("Particle Advection", Algorithm::ParticleAdvection),
        ] {
            let spec = AlgorithmSpec::paper_default(alias).unwrap();
            assert_eq!(spec.algorithm(), algorithm, "{alias}");
        }
        assert!(AlgorithmSpec::paper_default("bogus").is_none());
    }

    #[test]
    fn default_spec_matches_its_algorithm() {
        for a in Algorithm::ALL {
            assert_eq!(a.default_spec().algorithm(), a);
        }
    }

    #[test]
    fn serde_round_trip_every_variant() {
        for spec in every_variant() {
            let json = serde_json::to_string(&spec).expect("spec serializes");
            let back: AlgorithmSpec = serde_json::from_str(&json).expect("spec parses");
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn serde_round_trip_defaults_fill_advection() {
        // Old-style JSON without step_fraction/seed parses with the
        // paper defaults (wire compatibility with the pre-registry
        // in situ FilterSpec).
        let json = r#"{"type":"particle_advection","field":"velocity","particles":7,"steps":9}"#;
        let spec: AlgorithmSpec = serde_json::from_str(json).expect("defaults fill");
        assert_eq!(
            spec,
            AlgorithmSpec::ParticleAdvection {
                field: "velocity".into(),
                particles: 7,
                steps: 9,
                step_fraction: 5e-4,
                seed: 0x5eed_1234,
                scenario: FlowScenario::default(),
            }
        );
    }

    #[test]
    fn scenario_extends_the_canonical_encoding_only_when_non_default() {
        let base = Algorithm::ParticleAdvection.default_spec();
        assert!(
            !base.canonical().contains("|scenario("),
            "default scenario must not move pre-scenario fingerprints: {}",
            base.canonical()
        );
        let with_scenario = |scenario: FlowScenario| AlgorithmSpec::ParticleAdvection {
            field: "velocity".into(),
            particles: 1000,
            steps: 1000,
            step_fraction: default_step_fraction(),
            seed: default_seed(),
            scenario,
        };
        // Every scenario axis moves the fingerprint, and each encoding
        // is distinct.
        let variants = [
            with_scenario(FlowScenario {
                mode: FlowMode::Pathline,
                ..FlowScenario::default()
            }),
            with_scenario(FlowScenario {
                seeding: Seeding::AlongFeature,
                ..FlowScenario::default()
            }),
            with_scenario(FlowScenario {
                step_control: StepControl::Adaptive { tol: 1e-6 },
                ..FlowScenario::default()
            }),
            with_scenario(FlowScenario {
                termination: Termination::MaxTime { t_end: 0.25 },
                ..FlowScenario::default()
            }),
        ];
        let mut fps = vec![base.fingerprint()];
        for v in &variants {
            assert!(v.canonical().contains("|scenario("), "{}", v.canonical());
            fps.push(v.fingerprint());
        }
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), variants.len() + 1, "scenario axes collide");
    }

    #[test]
    fn serde_round_trip_preserves_scenario() {
        let spec = AlgorithmSpec::ParticleAdvection {
            field: "velocity".into(),
            particles: 11,
            steps: 13,
            step_fraction: 2e-4,
            seed: 5,
            scenario: FlowScenario {
                mode: FlowMode::Pathline,
                seeding: Seeding::AlongFeature,
                step_control: StepControl::Adaptive { tol: 1e-4 },
                termination: Termination::MaxTime { t_end: 0.5 },
            },
        };
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: AlgorithmSpec = serde_json::from_str(&json).expect("spec parses");
        assert_eq!(back, spec, "{json}");
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }
}
