//! Marching tetrahedra — an independent isosurface implementation used as
//! a cross-check oracle for the marching-cubes table in property tests.
//!
//! Each hexahedral cell is decomposed into 6 tetrahedra
//! ([`crate::tetclip::HEX_TO_TETS`]) and each tet is contoured with the
//! trivial 16-case logic (0, 1, or 2 triangles). MT and MC approximate the
//! same trilinear isosurface, so cell classifications and total surface
//! area must agree between the two (to discretization error).

use crate::tetclip::HEX_TO_TETS;
use vizmesh::{UniformGrid, Vec3};

/// Triangles of the isosurface within a single tetrahedron.
///
/// `corners`/`values` are the tet's four vertices and scalars; triangles
/// with vertices interpolated at `iso` are appended to `out`.
pub fn contour_tet(corners: [Vec3; 4], values: [f64; 4], iso: f64, out: &mut Vec<[Vec3; 3]>) {
    let inside: Vec<usize> = (0..4).filter(|&i| values[i] > iso).collect();
    let outside: Vec<usize> = (0..4).filter(|&i| values[i] <= iso).collect();
    let interp = |a: usize, b: usize| -> Vec3 {
        let t = ((iso - values[a]) / (values[b] - values[a])).clamp(0.0, 1.0);
        corners[a].lerp(corners[b], t)
    };
    match inside.len() {
        0 | 4 => {}
        1 => {
            let a = inside[0];
            out.push([
                interp(a, outside[0]),
                interp(a, outside[1]),
                interp(a, outside[2]),
            ]);
        }
        3 => {
            let d = outside[0];
            out.push([
                interp(inside[0], d),
                interp(inside[1], d),
                interp(inside[2], d),
            ]);
        }
        2 => {
            // Quad between the four crossing edges, split into 2 triangles.
            let (a, b) = (inside[0], inside[1]);
            let (c, d) = (outside[0], outside[1]);
            let p_ac = interp(a, c);
            let p_ad = interp(a, d);
            let p_bc = interp(b, c);
            let p_bd = interp(b, d);
            out.push([p_ac, p_ad, p_bd]);
            out.push([p_ac, p_bd, p_bc]);
        }
        // lint: infallible because a tetrahedron has zero to four inside vertices
        _ => unreachable!(),
    }
}

/// Marching tetrahedra over a point-centered scalar on a uniform grid.
/// Returns a triangle soup (no welding — this is a test oracle).
pub fn marching_tetrahedra(grid: &UniformGrid, values: &[f64], iso: f64) -> Vec<[Vec3; 3]> {
    assert_eq!(values.len(), grid.num_points());
    let mut out = Vec::new();
    for c in 0..grid.num_cells() {
        let ids = grid.cell_point_ids(c);
        let corners = grid.cell_corners(c);
        for tet in HEX_TO_TETS {
            let tc = [
                corners[tet[0]],
                corners[tet[1]],
                corners[tet[2]],
                corners[tet[3]],
            ];
            let tv = [
                values[ids[tet[0]]],
                values[ids[tet[1]]],
                values[ids[tet[2]]],
                values[ids[tet[3]]],
            ];
            contour_tet(tc, tv, iso, &mut out);
        }
    }
    out
}

/// Surface area of a triangle soup.
pub fn soup_area(tris: &[[Vec3; 3]]) -> f64 {
    tris.iter()
        .map(|t| 0.5 * (t[1] - t[0]).cross(t[2] - t[0]).length())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tet_with_no_crossing_emits_nothing() {
        let corners = [Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let mut out = Vec::new();
        contour_tet(corners, [1.0; 4], 0.0, &mut out);
        contour_tet(corners, [-1.0, -1.0, -1.0, -1.0], 0.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_corner_crossing_is_one_triangle() {
        let corners = [Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let mut out = Vec::new();
        contour_tet(corners, [1.0, -1.0, -1.0, -1.0], 0.0, &mut out);
        assert_eq!(out.len(), 1);
        // All vertices at edge midpoints of the corner 0 edges.
        for v in &out[0] {
            assert!((v.length() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn two_corner_crossing_is_a_quad() {
        let corners = [Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let mut out = Vec::new();
        contour_tet(corners, [1.0, 1.0, -1.0, -1.0], 0.0, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn mt_sphere_area_close_to_analytic() {
        let grid = UniformGrid::cube_cells(20);
        let c = grid.bounds().center();
        let values: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).distance(c))
            .collect();
        let r = 0.35;
        let tris = marching_tetrahedra(&grid, &values, r);
        let area = soup_area(&tris);
        let expect = 4.0 * std::f64::consts::PI * r * r;
        assert!(
            (area - expect).abs() / expect < 0.05,
            "area {area} vs {expect}"
        );
    }

    #[test]
    fn mt_agrees_with_mc_on_cell_classification() {
        // Both algorithms must emit geometry in exactly the same cells
        // whenever no cell face is ambiguous... MT splits cells into tets,
        // so a cell produces geometry iff some corner pair straddles iso —
        // identical to MC's criterion (any corner sign differs).
        let grid = UniformGrid::cube_cells(6);
        let values: Vec<f64> = (0..grid.num_points())
            .map(|p| {
                let q = grid.point_coord_id(p);
                (5.0 * q.x).sin() + (3.0 * q.y).cos() + q.z
            })
            .collect();
        let iso = 0.7;
        let mc = crate::contour::marching_cubes(&grid, &values, iso);
        let mt = marching_tetrahedra(&grid, &values, iso);
        // Compare emptiness only (both empty or both non-empty) and total
        // area within a loose tolerance (the two tessellations differ at
        // O(h)).
        assert_eq!(mc.triangles.num_cells() == 0, mt.is_empty());
        if !mt.is_empty() {
            let mut mc_area = 0.0;
            for c in 0..mc.triangles.num_cells() {
                let t = mc.triangles.cell_points(c);
                let (a, b, cc) = (
                    mc.points[t[0] as usize],
                    mc.points[t[1] as usize],
                    mc.points[t[2] as usize],
                );
                mc_area += 0.5 * (b - a).cross(cc - a).length();
            }
            let mt_area = soup_area(&mt);
            let rel = (mc_area - mt_area).abs() / mt_area;
            assert!(rel < 0.15, "MC area {mc_area} vs MT area {mt_area}");
        }
    }
}
