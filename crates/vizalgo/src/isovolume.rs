//! Isovolume (§III-B4): extract the sub-volume where a scalar lies in
//! `[lo, hi]`.
//!
//! Like clip, but against a scalar range instead of an implicit function:
//! cells completely inside the range pass through, cells completely
//! outside are removed, and straddling cells are subdivided — first
//! clipped against `f ≥ lo`, then the result against `f ≤ hi`.

use crate::arena::TetScratch;
use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use crate::tetclip::{clip_keep_above_into, clip_keep_below_into, TetMesh, HEX_TO_TETS};
use rayon::prelude::*;
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, WorkCounters};

/// The isovolume filter over a point-centered scalar.
#[derive(Debug, Clone)]
pub struct Isovolume {
    pub field: String,
    pub lo: f64,
    pub hi: f64,
}

impl Isovolume {
    pub fn new(field: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "isovolume range is inverted: [{lo}, {hi}]");
        Isovolume {
            field: field.into(),
            lo,
            hi,
        }
    }

    /// The middle `frac` band of the field's range.
    pub fn middle_band(field: impl Into<String>, input: &DataSet, frac: f64) -> Self {
        let field = field.into();
        let (lo, hi) = input
            .field_with(&field, Association::Points)
            .and_then(|f| f.scalar_range())
            .unwrap_or((0.0, 1.0));
        let mid = (lo + hi) * 0.5;
        let half = (hi - lo) * frac.clamp(0.0, 1.0) * 0.5;
        Isovolume::new(field, mid - half, mid + half)
    }
}

impl Filter for Isovolume {
    fn name(&self) -> &'static str {
        "Isovolume"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("isovolume expects a structured dataset");
        let values = input
            .point_scalars(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point scalar field '{}'", self.field));
        let num_cells = grid.num_cells();
        let num_points = grid.num_points();

        // Phase 1: classify cells against the range.
        #[derive(Clone, Copy, PartialEq)]
        enum Side {
            In,
            Out,
            Straddle,
        }
        let sides: Vec<Side> = (0..num_cells)
            .into_par_iter()
            .map(|c| {
                let ids = grid.cell_point_ids(c);
                let mut all_in = true;
                let mut all_above_hi = true;
                let mut all_below_lo = true;
                for &p in &ids {
                    let v = values[p];
                    if v < self.lo || v > self.hi {
                        all_in = false;
                    }
                    if v <= self.hi {
                        all_above_hi = false;
                    }
                    if v >= self.lo {
                        all_below_lo = false;
                    }
                }
                if all_in {
                    Side::In
                } else if all_above_hi || all_below_lo {
                    Side::Out
                } else {
                    Side::Straddle
                }
            })
            .collect();
        let mut classify = WorkCounters::new();
        classify.tally(num_cells as u64, 38, 2, 64 + 32, 1);
        classify.working_set_bytes = (num_points * 8) as u64;

        // Phase 2/3: gather interior cells, clip straddling ones twice.
        let (mut num_in, mut num_straddle) = (0usize, 0usize);
        for s in &sides {
            match s {
                Side::In => num_in += 1,
                Side::Straddle => num_straddle += 1,
                Side::Out => {}
            }
        }
        let active = num_in + num_straddle;
        let mut gather = WorkCounters::new();
        let mut tet_work = WorkCounters::new();
        // Pre-size for the measured shape of straddle output (≈ 12 tets
        // per straddling hex); everything still grows on demand.
        let mut mesh = TetMesh::with_point_capacity(active.saturating_mul(2).min(num_points));
        let mut scratch = TetScratch::new();
        let mut point_map: Vec<u32> = vec![u32::MAX; num_points];
        let mut cells = CellSet::with_capacity(
            num_in + 12 * num_straddle,
            8 * num_in + 4 * 12 * num_straddle,
        );
        let mut map_point = |mesh: &mut TetMesh, pid: usize, w: &mut WorkCounters| -> u32 {
            if point_map[pid] == u32::MAX {
                point_map[pid] =
                    mesh.add_point_with(grid.point_coord_id(pid), values[pid], values[pid]);
                w.tally(1, 12, 3, 32, 40);
            }
            point_map[pid]
        };
        for c in 0..num_cells {
            match sides[c] {
                Side::Out => {}
                Side::In => {
                    let ids = grid.cell_point_ids(c);
                    let mut conn = [0u32; 8];
                    for (slot, &pid) in ids.iter().enumerate() {
                        conn[slot] = map_point(&mut mesh, pid, &mut gather);
                    }
                    cells.push(CellShape::Hexahedron, &conn);
                    gather.tally(1, 30, 0, 32, 40);
                }
                Side::Straddle => {
                    let ids = grid.cell_point_ids(c);
                    let mut corner = [0u32; 8];
                    for (slot, &pid) in ids.iter().enumerate() {
                        corner[slot] = map_point(&mut mesh, pid, &mut tet_work);
                    }
                    scratch.tets.clear();
                    for t in HEX_TO_TETS {
                        scratch
                            .tets
                            .push([corner[t[0]], corner[t[1]], corner[t[2]], corner[t[3]]]);
                    }
                    // Keep f >= lo, then f <= hi, through the reused
                    // scratch buffers (no per-cell allocation, no
                    // whole-mesh value rewriting).
                    tet_work +=
                        clip_keep_above_into(&mut mesh, &scratch.tets, self.lo, &mut scratch.mid);
                    tet_work +=
                        clip_keep_below_into(&mut mesh, &scratch.mid, self.hi, &mut scratch.kept);
                    for &t in &scratch.kept {
                        cells.push(CellShape::Tetra, &t);
                    }
                }
            }
        }

        let payloads = mesh.payloads.clone();
        let mut ds = DataSet::explicit(mesh.points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            self.field.clone(),
            Association::Points,
            payloads[..n].to_vec(),
        ));
        ds.compact_points();
        FilterOutput::data(
            ds,
            vec![
                KernelReport::new("isovolume-classify", KernelClass::CellClassify, classify),
                KernelReport::new("isovolume-gather", KernelClass::GatherScatter, gather),
                KernelReport::new("isovolume-subdivide", KernelClass::TetClip, tet_work),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{UniformGrid, Vec3};

    /// Dataset with point scalar = x coordinate over the unit cube.
    fn x_field(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    fn output_volume(ds: &DataSet) -> f64 {
        let (points, cells) = ds.as_explicit().unwrap();
        let mut vol = 0.0;
        for (shape, conn) in cells.iter() {
            match shape {
                CellShape::Tetra => {
                    let (a, b, c, d) = (
                        points[conn[0] as usize],
                        points[conn[1] as usize],
                        points[conn[2] as usize],
                        points[conn[3] as usize],
                    );
                    vol += ((b - a).cross(c - a).dot(d - a) / 6.0).abs();
                }
                CellShape::Hexahedron => {
                    let a = points[conn[0] as usize];
                    let g = points[conn[6] as usize];
                    let e = g - a;
                    vol += (e.x * e.y * e.z).abs();
                }
                other => panic!("unexpected output shape {other:?}"),
            }
        }
        vol
    }

    #[test]
    fn slab_volume_is_exact_for_linear_field() {
        // f = x in [0.25, 0.75] carves out exactly half the unit cube,
        // and the cut planes fall between grid points so cells straddle.
        let ds = x_field(8);
        let out = Isovolume::new("f", 0.25 + 1e-9, 0.75 - 1e-9).execute(&ds);
        let vol = output_volume(&out.dataset.unwrap());
        assert!((vol - 0.5).abs() < 1e-6, "volume = {vol}");
    }

    #[test]
    fn off_grid_band_volume() {
        // Band [0.3, 0.6] of f = x: volume 0.3; cut planes are strictly
        // inside cells for an 8-cell grid.
        let ds = x_field(8);
        let out = Isovolume::new("f", 0.3, 0.6).execute(&ds);
        let vol = output_volume(&out.dataset.unwrap());
        assert!((vol - 0.3).abs() < 1e-9, "volume = {vol}");
    }

    #[test]
    fn full_range_passes_everything_through() {
        let ds = x_field(4);
        let out = Isovolume::new("f", -1.0, 2.0).execute(&ds);
        let result = out.dataset.unwrap();
        assert_eq!(result.num_cells(), 64);
        assert!((output_volume(&result) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_range_outside_field() {
        let ds = x_field(4);
        let out = Isovolume::new("f", 5.0, 6.0).execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 0);
    }

    #[test]
    fn output_field_values_are_within_band() {
        let ds = x_field(8);
        let out = Isovolume::new("f", 0.3, 0.6).execute(&ds);
        let result = out.dataset.unwrap();
        let vals = result.point_scalars("f").unwrap();
        // Points referenced by cells should be within the band (small
        // tolerance for interpolation rounding).
        let (_, cells) = result.as_explicit().unwrap();
        let mut used = vec![false; vals.len()];
        for (_, conn) in cells.iter() {
            for &p in conn {
                used[p as usize] = true;
            }
        }
        for (i, &v) in vals.iter().enumerate() {
            if used[i] {
                assert!(
                    (0.3 - 1e-9..=0.6 + 1e-9).contains(&v),
                    "value {v} outside band"
                );
            }
        }
    }

    #[test]
    fn middle_band_covers_field_middle() {
        let ds = x_field(4);
        let iso = Isovolume::middle_band("f", &ds, 0.5);
        assert!((iso.lo - 0.25).abs() < 1e-12);
        assert!((iso.hi - 0.75).abs() < 1e-12);
    }

    #[test]
    fn radial_band_is_a_shell() {
        // f = distance from center; band selects a spherical shell whose
        // volume we can verify.
        let grid = UniformGrid::cube_cells(12);
        let c = Vec3::splat(0.5);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).distance(c))
            .collect();
        let ds = DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals));
        let (r0, r1) = (0.2, 0.4);
        let out = Isovolume::new("f", r0, r1).execute(&ds);
        let vol = output_volume(&out.dataset.unwrap());
        let expect = 4.0 / 3.0 * std::f64::consts::PI * (r1.powi(3) - r0.powi(3));
        assert!(
            (vol - expect).abs() / expect < 0.05,
            "shell volume {vol} vs {expect}"
        );
    }
}
