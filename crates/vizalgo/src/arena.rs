//! Flat scratch arenas for kernel hot loops.
//!
//! The raw-speed kernel pass (docs/PERFORMANCE.md) replaces per-cell and
//! per-vertex allocations in the geometry kernels with two reusable
//! structures:
//!
//! * [`WeldMap`] — an open-addressing hash table over *packed* integer
//!   keys, used for vertex welding in `contour` (packed edge ids) and
//!   `tetclip` (packed edge + isovalue keys). Unlike
//!   `std::collections::HashMap` it allocates two flat arrays and never
//!   boxes per-entry state, and lookups are a multiply + masked linear
//!   probe. Insertion order still assigns point ids exactly like the
//!   `HashMap` it replaced, so welded meshes are bit-identical.
//! * [`TetScratch`] — the per-cell tetrahedron buffers of the clip
//!   pipeline (`clip`/`isovolume`), allocated once per `execute` and
//!   reused across every straddling cell instead of being re-`collect`ed
//!   per cell.
//!
//! The workspace policy (DESIGN.md: "no per-cell allocation in kernel
//! inner loops") is enforced by the `hot-loop-alloc` pass of
//! `cargo xtask analyze`, ratcheted in `ANALYSIS_BASELINE.json`.
#![deny(missing_docs)]

/// An integer key type usable in a [`WeldMap`].
///
/// Implementations reserve one all-ones sentinel value ([`Self::EMPTY`])
/// to mark unoccupied slots; callers must never insert it. Both weld-key
/// packings in this crate stay clear of the sentinel because packed
/// point ids are bounded by the mesh point count (`< u32::MAX`).
pub trait PackedKey: Copy + Eq {
    /// Sentinel marking an empty slot; never a valid key.
    const EMPTY: Self;
    /// Probe start for a table of `mask + 1` (power-of-two) slots:
    /// a Fibonacci multiply spreads packed-id keys whose entropy sits in
    /// arbitrary bit positions.
    fn probe_start(self, mask: usize) -> usize;
}

/// 2^64 / φ, the Fibonacci hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl PackedKey for u64 {
    const EMPTY: Self = u64::MAX;

    #[inline]
    fn probe_start(self, mask: usize) -> usize {
        // Fold the high half down first so keys differing only in their
        // top 32 bits (the `lo` point id of a packed edge) still spread.
        (((self ^ (self >> 32)).wrapping_mul(FIB) >> 32) as usize) & mask
    }
}

impl PackedKey for u128 {
    const EMPTY: Self = u128::MAX;

    #[inline]
    fn probe_start(self, mask: usize) -> usize {
        let folded = (self as u64) ^ ((self >> 64) as u64);
        folded.probe_start(mask)
    }
}

/// Pack an ordered point-id pair into one `u64` weld key
/// (`contour`'s per-edge vertex identity).
#[inline]
pub fn pack_edge(lo: u32, hi: u32) -> u64 {
    (lo as u64) << 32 | hi as u64
}

/// Pack an ordered point-id pair plus an isovalue's bit pattern into one
/// `u128` weld key (`tetclip`'s per-edge-per-isovalue vertex identity).
#[inline]
pub fn pack_edge_iso(lo: u32, hi: u32, iso_bits: u64) -> u128 {
    (lo as u128) << 96 | (hi as u128) << 64 | iso_bits as u128
}

/// A flat open-addressing map from packed integer keys to point ids.
///
/// Backing storage is two parallel arrays (keys, values) with
/// power-of-two capacity, Fibonacci-hash probe starts, and linear
/// probing; the table grows (rehashes) at ~2/3 load. There is no
/// per-entry allocation and no iteration order — the kernels only ever
/// `get`/`insert`, and the point-id *assignment* order (the order of
/// first insertions) is what determines output meshes, exactly as with
/// the `HashMap` this replaced.
#[derive(Debug, Clone)]
pub struct WeldMap<K: PackedKey = u64> {
    keys: Vec<K>,
    vals: Vec<u32>,
    len: usize,
}

impl<K: PackedKey> Default for WeldMap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PackedKey> WeldMap<K> {
    /// An empty map that allocates on first insert.
    pub fn new() -> Self {
        WeldMap {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
        }
    }

    /// An empty map pre-sized to hold `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = Self::new();
        if n > 0 {
            m.rebuild(Self::slots_for(n));
        }
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all entries, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.keys.fill(K::EMPTY);
        self.len = 0;
    }

    /// Power-of-two slot count keeping load ≤ 2/3 for `n` entries.
    fn slots_for(n: usize) -> usize {
        (n.saturating_mul(3) / 2 + 1).next_power_of_two().max(16)
    }

    /// The slot holding `key`, or the empty slot where it belongs.
    #[inline]
    fn slot(&self, key: K) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = key.probe_start(mask);
        loop {
            let k = self.keys[i];
            if k == key || k == K::EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Look up a key.
    #[inline]
    pub fn get(&self, key: K) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let i = self.slot(key);
        if self.keys[i] == K::EMPTY {
            None
        } else {
            Some(self.vals[i])
        }
    }

    /// Insert or overwrite a key. `key` must not be [`PackedKey::EMPTY`].
    #[inline]
    pub fn insert(&mut self, key: K, val: u32) {
        debug_assert!(key != K::EMPTY, "the all-ones key is the empty sentinel");
        if self.keys.is_empty() || (self.len + 1) * 3 > self.keys.len() * 2 {
            self.rebuild(Self::slots_for(self.len + 1));
        }
        let i = self.slot(key);
        if self.keys[i] == K::EMPTY {
            self.len += 1;
        }
        self.keys[i] = key;
        self.vals[i] = val;
    }

    /// The id for `key`, inserting `make()`'s result on first sight.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> u32) -> u32 {
        match self.get(key) {
            Some(id) => id,
            None => {
                let id = make();
                self.insert(key, id);
                id
            }
        }
    }

    /// Re-allocate to `slots` slots and rehash every live entry.
    fn rebuild(&mut self, slots: usize) {
        debug_assert!(slots.is_power_of_two() && slots * 2 >= self.len * 3);
        let old_keys = std::mem::replace(&mut self.keys, vec![K::EMPTY; slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0u32; slots]);
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != K::EMPTY {
                let i = self.slot(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

/// Reusable per-cell buffers for the tetrahedral clip pipeline.
///
/// `clip`/`isovolume` decompose each straddling hexahedron into 6 tets
/// ([`tets`](Self::tets)), clip once into [`mid`](Self::mid) (≤ 3 pieces
/// per tet), and — for the two-sided isovolume — clip again into
/// [`kept`](Self::kept). One `TetScratch` lives for a whole `execute`
/// call; each cell `clear()`s and refills the buffers in place, so the
/// inner loop performs no allocation after warm-up.
#[derive(Debug)]
pub struct TetScratch {
    /// The cell's tets from the hex decomposition (6 for a hexahedron).
    pub tets: Vec<[u32; 4]>,
    /// Output of the first clip pass (≤ 3 tets per input tet).
    pub mid: Vec<[u32; 4]>,
    /// Output of the second clip pass.
    pub kept: Vec<[u32; 4]>,
}

impl Default for TetScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl TetScratch {
    /// Buffers pre-sized for hexahedral cells (6 → 18 → 54 tets).
    pub fn new() -> Self {
        TetScratch {
            tets: Vec::with_capacity(6),
            mid: Vec::with_capacity(18),
            kept: Vec::with_capacity(54),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_map_finds_nothing() {
        let m: WeldMap = WeldMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(pack_edge(0, 1)), None);
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut m: WeldMap = WeldMap::new();
        m.insert(pack_edge(3, 9), 17);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(pack_edge(3, 9)), Some(17));
        assert_eq!(m.get(pack_edge(9, 3)), None, "packing is order-sensitive");
    }

    #[test]
    fn duplicate_vertex_welds_to_first_id() {
        // The welding pattern: first sight assigns the next point id,
        // every later sight of the same edge returns it unchanged.
        let mut m: WeldMap = WeldMap::new();
        let mut next = 0u32;
        let mut alloc = |m: &mut WeldMap, k: u64| {
            m.get_or_insert_with(k, || {
                let id = next;
                next += 1;
                id
            })
        };
        let a = alloc(&mut m, pack_edge(0, 1));
        let b = alloc(&mut m, pack_edge(1, 2));
        let a2 = alloc(&mut m, pack_edge(0, 1));
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(next, 2, "duplicate edge must not mint a new vertex");
    }

    #[test]
    fn boundary_point_ids_survive_growth() {
        // Keys shaped like real weld keys at id extremes, plus enough
        // volume to force several rehashes.
        let mut m: WeldMap = WeldMap::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let ids = [0u32, 1, 2, u32::MAX - 2, u32::MAX - 1];
        let mut val = 0u32;
        for &lo in &ids {
            for &hi in &ids {
                if lo < hi {
                    m.insert(pack_edge(lo, hi), val);
                    reference.insert(pack_edge(lo, hi), val);
                    val += 1;
                }
            }
        }
        for i in 0..10_000u32 {
            m.insert(pack_edge(i, i + 1), 100 + i);
            reference.insert(pack_edge(i, i + 1), 100 + i);
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v), "key {k:#x}");
        }
    }

    #[test]
    fn matches_hashmap_on_colliding_key_stream() {
        // Sequential edge keys share probe neighborhoods; the linear
        // probe must still keep every entry distinct.
        let mut m: WeldMap<u128> = WeldMap::with_capacity(64);
        let mut reference: HashMap<u128, u32> = HashMap::new();
        for i in 0..2_000u32 {
            let key = pack_edge_iso(i / 7, i / 7 + 1 + i % 7, (i % 3) as u64);
            let val = i;
            // Same first-wins discipline the kernels use.
            if m.get(key).is_none() {
                m.insert(key, val);
            }
            reference.entry(key).or_insert(val);
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn clear_keeps_capacity_and_drops_entries() {
        let mut m: WeldMap = WeldMap::with_capacity(100);
        for i in 0..100u32 {
            m.insert(pack_edge(i, i + 1), i);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(pack_edge(0, 1)), None);
        for i in 0..100u32 {
            m.insert(pack_edge(i, i + 1), i + 1);
        }
        assert_eq!(m.get(pack_edge(50, 51)), Some(51));
    }

    #[test]
    fn u128_keys_separate_iso_levels() {
        let mut m: WeldMap<u128> = WeldMap::new();
        let lo = 0.25f64.to_bits();
        let hi = (-0.25f64).to_bits();
        m.insert(pack_edge_iso(4, 9, lo), 1);
        m.insert(pack_edge_iso(4, 9, hi), 2);
        assert_eq!(m.get(pack_edge_iso(4, 9, lo)), Some(1));
        assert_eq!(m.get(pack_edge_iso(4, 9, hi)), Some(2));
    }

    #[test]
    fn tet_scratch_starts_empty_with_capacity() {
        let s = TetScratch::new();
        assert!(s.tets.is_empty() && s.mid.is_empty() && s.kept.is_empty());
        assert!(s.tets.capacity() >= 6);
        assert!(s.mid.capacity() >= 18);
        assert!(s.kept.capacity() >= 54);
    }
}
