//! Marching-cubes contour (isosurface) extraction.
//!
//! This is the paper's §III-B1 algorithm: iterate over every cell,
//! classify its corners against the isovalue, and use a **pre-computed
//! 256-case lookup table** plus edge interpolation to emit triangles.
//!
//! The lookup table is generated once (at first use) by walking the
//! isoline segments around each cell configuration's faces and joining
//! them into closed polygons, which are then fan-triangulated. Face
//! ambiguities (two diagonal corners inside) are resolved by the fixed
//! "separate the inside corners" rule; because the rule depends only on
//! the shared face's corner signs, adjacent cells always agree and the
//! extracted surface is watertight away from the domain boundary — a
//! property the test-suite checks directly on random fields.

use crate::arena::{pack_edge, WeldMap};
use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rayon::prelude::*;
use std::sync::OnceLock;
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, UniformGrid, Vec3, WorkCounters};

/// Corner coordinates of the canonical unit cell, VTK hexahedron order.
pub const CORNERS: [[f64; 3]; 8] = [
    [0.0, 0.0, 0.0],
    [1.0, 0.0, 0.0],
    [1.0, 1.0, 0.0],
    [0.0, 1.0, 0.0],
    [0.0, 0.0, 1.0],
    [1.0, 0.0, 1.0],
    [1.0, 1.0, 1.0],
    [0.0, 1.0, 1.0],
];

/// The 12 cell edges as corner pairs (bottom ring, top ring, verticals).
pub const EDGES: [(usize, usize); 12] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 0),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 4),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// The 6 faces as counter-clockwise corner cycles (seen from outside).
const FACES: [[usize; 4]; 6] = [
    [0, 3, 2, 1], // bottom (z = 0)
    [4, 5, 6, 7], // top (z = 1)
    [0, 1, 5, 4], // front (y = 0)
    [1, 2, 6, 5], // right (x = 1)
    [2, 3, 7, 6], // back (y = 1)
    [3, 0, 4, 7], // left (x = 0)
];

/// Triangles for one corner configuration, as triples of edge ids.
pub type CaseTriangles = Vec<[u8; 3]>;

/// Generate (or fetch) the full 256-case triangle table.
pub fn triangle_table() -> &'static [CaseTriangles; 256] {
    static TABLE: OnceLock<Box<[CaseTriangles; 256]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table: Vec<CaseTriangles> = Vec::with_capacity(256);
        for config in 0..256u16 {
            table.push(build_case(config as u8));
        }
        // lint: infallible because the loop above pushes exactly 256 cases
        table.try_into().expect("exactly 256 cases")
    })
}

/// Edge id between two corners, if they are adjacent.
fn edge_between(a: usize, b: usize) -> Option<u8> {
    EDGES
        .iter()
        .position(|&(x, y)| (x == a && y == b) || (x == b && y == a))
        .map(|e| e as u8)
}

/// Build the triangles for one configuration. Bit `i` of `config` set
/// means corner `i` is inside (value above the isovalue).
fn build_case(config: u8) -> CaseTriangles {
    let inside = |c: usize| config >> c & 1 == 1;

    // 1. For each face, pair up the crossing edges into isoline segments.
    // A crossing edge always ends up with exactly two partners, so fixed
    // two-slot rows (plus fill counts) replace per-edge vectors.
    let mut partners = [[0u8; 2]; 12];
    let mut partner_count = [0usize; 12];
    for face in FACES {
        // Face edges: between consecutive corners of the cycle.
        let mut fe = [0u8; 4];
        for (i, slot) in fe.iter_mut().enumerate() {
            // lint: infallible because consecutive corners of a face cycle share an edge
            *slot = edge_between(face[i], face[(i + 1) % 4]).expect("face edge");
        }
        let mut crossing = [0usize; 4];
        let mut num_crossing = 0;
        for i in 0..4 {
            if inside(face[i]) != inside(face[(i + 1) % 4]) {
                crossing[num_crossing] = i;
                num_crossing += 1;
            }
        }
        let mut link = |a: u8, b: u8| {
            partners[a as usize][partner_count[a as usize]] = b;
            partner_count[a as usize] += 1;
            partners[b as usize][partner_count[b as usize]] = a;
            partner_count[b as usize] += 1;
        };
        match num_crossing {
            0 => {}
            2 => link(fe[crossing[0]], fe[crossing[1]]),
            4 => {
                // Ambiguous face: both diagonals differ. Separate the
                // inside corners: each inside corner gets the segment
                // between its two touching face edges. The rule depends
                // only on the shared corner signs, so the two cells
                // sharing this face always agree.
                for i in 0..4 {
                    if inside(face[i]) {
                        // Edges touching corner i on this face: fe[i-1], fe[i].
                        link(fe[(i + 3) % 4], fe[i]);
                    }
                }
            }
            // lint: infallible because sign changes around a 4-cycle come in pairs
            n => unreachable!("a quad face cannot have {n} sign changes"),
        }
    }

    // 2. Walk the segment graph into closed polygons of edge ids.
    let crossing_edges: Vec<usize> = (0..12)
        .filter(|&e| {
            let (a, b) = EDGES[e];
            inside(a) != inside(b)
        })
        .collect();
    for &e in &crossing_edges {
        debug_assert_eq!(
            partner_count[e], 2,
            "crossing edge {e} of config {config:#010b} must have exactly 2 partners"
        );
    }

    let mut visited = [false; 12];
    let mut triangles = CaseTriangles::with_capacity(4);
    for &start in &crossing_edges {
        if visited[start] {
            continue;
        }
        // A polygon visits at most the 12 cell edges, so the cycle fits
        // in a fixed buffer.
        let mut cycle = [0u8; 12];
        let mut cycle_len = 0usize;
        cycle[cycle_len] = start as u8;
        cycle_len += 1;
        visited[start] = true;
        let mut prev = start as u8;
        let mut cur = partners[start][0];
        while cur as usize != start {
            visited[cur as usize] = true;
            cycle[cycle_len] = cur;
            cycle_len += 1;
            let next = if partners[cur as usize][0] == prev {
                partners[cur as usize][1]
            } else {
                partners[cur as usize][0]
            };
            prev = cur;
            cur = next;
        }
        let cycle = &mut cycle[..cycle_len];

        // 3. Orient the polygon so its normal points from the inside
        //    (high-value) corners toward the outside.
        let mid = |e: u8| -> Vec3 {
            let (a, b) = EDGES[e as usize];
            let pa = Vec3::from(CORNERS[a]);
            let pb = Vec3::from(CORNERS[b]);
            (pa + pb) * 0.5
        };
        // Newell normal.
        let mut normal = Vec3::ZERO;
        for i in 0..cycle.len() {
            let p = mid(cycle[i]);
            let q = mid(cycle[(i + 1) % cycle.len()]);
            normal += Vec3::new(
                (p.y - q.y) * (p.z + q.z),
                (p.z - q.z) * (p.x + q.x),
                (p.x - q.x) * (p.y + q.y),
            );
        }
        let mut inside_centroid = Vec3::ZERO;
        let mut outside_centroid = Vec3::ZERO;
        let (mut n_in, mut n_out) = (0.0, 0.0);
        for c in 0..8 {
            let p = Vec3::from(CORNERS[c]);
            if inside(c) {
                inside_centroid += p;
                n_in += 1.0;
            } else {
                outside_centroid += p;
                n_out += 1.0;
            }
        }
        let d = outside_centroid / n_out - inside_centroid / n_in;
        if normal.dot(d) < 0.0 {
            cycle.reverse();
        }

        // 4. Fan-triangulate.
        for i in 1..cycle.len() - 1 {
            triangles.push([cycle[0], cycle[i], cycle[i + 1]]);
        }
    }
    triangles
}

/// Result of one marching-cubes pass over a grid.
pub struct McOutput {
    pub points: Vec<Vec3>,
    pub triangles: CellSet,
    /// Interpolated values of a secondary field at the surface vertices
    /// (here: the isovalue itself, matching VTK-m's default).
    pub point_values: Vec<f64>,
    pub classify_work: WorkCounters,
    pub interp_work: WorkCounters,
}

/// Run marching cubes over a point-centered scalar on a uniform grid.
///
/// Vertices are welded on shared cell edges, so the output is a proper
/// indexed mesh (watertight in the grid interior).
pub fn marching_cubes(grid: &UniformGrid, values: &[f64], isovalue: f64) -> McOutput {
    assert_eq!(
        values.len(),
        grid.num_points(),
        "marching cubes needs a point-centered scalar"
    );
    let table = triangle_table();
    let [cx, cy, cz] = grid.cell_dims();
    let num_cells = grid.num_cells();

    // Parallel over z-slabs: each slab emits triangles keyed by global
    // edge ids; a serial weld pass builds the final indexed mesh.
    let slab = (cx * cy).max(1);
    let slabs: Vec<(WorkCounters, WorkCounters, Vec<([u64; 3], [Vec3; 3])>)> = (0..cz)
        .into_par_iter()
        .map(|kz| {
            let mut classify = WorkCounters::new();
            let mut interp = WorkCounters::new();
            // A surface typically cuts O(cx·cy) of a slab's cells, each
            // contributing a couple of triangles; pre-size for that and
            // let empty slabs keep the (one) allocation.
            let mut tris: Vec<([u64; 3], [Vec3; 3])> = Vec::with_capacity(slab / 4);
            for c in kz * slab..(kz + 1) * slab {
                let ids = grid.cell_point_ids(c);
                let mut config = 0u8;
                for (bit, &pid) in ids.iter().enumerate() {
                    if values[pid] > isovalue {
                        config |= 1 << bit;
                    }
                }
                classify.tally(1, 26, 8, 64 + 32, 0);
                let case = &table[config as usize];
                if case.is_empty() {
                    continue;
                }
                let corners = grid.cell_corners(c);
                for t in case {
                    let mut key = [0u64; 3];
                    let mut pos = [Vec3::ZERO; 3];
                    for (slot, &e) in t.iter().enumerate() {
                        let (a, b) = EDGES[e as usize];
                        let (pa, pb) = (ids[a], ids[b]);
                        let (va, vb) = (values[pa], values[pb]);
                        let t01 = ((isovalue - va) / (vb - va)).clamp(0.0, 1.0);
                        pos[slot] = corners[a].lerp(corners[b], t01);
                        let (lo, hi) = if pa < pb { (pa, pb) } else { (pb, pa) };
                        key[slot] = pack_edge(lo as u32, hi as u32);
                        interp.tally(1, 34, 14, 48, 24);
                    }
                    tris.push((key, pos));
                    interp.tally(1, 16, 0, 0, 12);
                }
            }
            (classify, interp, tris)
        })
        .collect();

    // Weld over the flat packed-index table. Triangles are consumed in
    // slab (raster) order, and first sight of an edge key assigns the
    // next point id — identical id assignment to the map-based weld this
    // replaced, without per-entry heap boxes.
    let total_tris: usize = slabs.iter().map(|(_, _, t)| t.len()).sum();
    let mut classify = WorkCounters::new();
    let mut interp = WorkCounters::new();
    let mut weld: WeldMap = WeldMap::with_capacity(total_tris);
    let mut points: Vec<Vec3> = Vec::with_capacity(total_tris);
    let mut point_values: Vec<f64> = Vec::with_capacity(total_tris);
    let mut cells = CellSet::with_capacity(total_tris, 3 * total_tris);
    for (cw, iw, tris) in slabs {
        classify.merge(&cw);
        interp.merge(&iw);
        for (keys, pos) in tris {
            let mut tri = [0u32; 3];
            for s in 0..3 {
                let id = match weld.get(keys[s]) {
                    Some(id) => id,
                    None => {
                        let id = points.len() as u32;
                        points.push(pos[s]);
                        point_values.push(isovalue);
                        weld.insert(keys[s], id);
                        id
                    }
                };
                tri[s] = id;
            }
            // Skip degenerate triangles produced when two edges of the
            // case interpolate to the same welded vertex.
            if tri[0] != tri[1] && tri[1] != tri[2] && tri[2] != tri[0] {
                cells.push(CellShape::Triangle, &tri);
            }
        }
    }
    classify.working_set_bytes = (values.len() * 8) as u64;
    debug_assert_eq!(classify.items, num_cells as u64);

    McOutput {
        points,
        triangles: cells,
        point_values,
        classify_work: classify,
        interp_work: interp,
    }
}

/// The contour filter: marching cubes at one or more isovalues (the paper
/// uses 10 isovalues per visualization cycle).
#[derive(Debug, Clone)]
pub struct Contour {
    /// Point-centered scalar field to contour.
    pub field: String,
    pub isovalues: Vec<f64>,
}

impl Contour {
    pub fn new(field: impl Into<String>, isovalues: Vec<f64>) -> Self {
        assert!(!isovalues.is_empty(), "contour needs at least one isovalue");
        Contour {
            field: field.into(),
            isovalues,
        }
    }

    /// The paper's configuration: `n` isovalues evenly spaced across the
    /// interior of the field's range (avoiding the exact min/max, which
    /// produce empty surfaces).
    pub fn spanning(field: impl Into<String>, input: &DataSet, n: usize) -> Self {
        let field = field.into();
        let (lo, hi) = input
            .field_with(&field, Association::Points)
            .and_then(|f| f.scalar_range())
            .unwrap_or((0.0, 1.0));
        let isovalues = (0..n)
            .map(|i| lo + (hi - lo) * (i as f64 + 1.0) / (n as f64 + 1.0))
            .collect();
        Contour { field, isovalues }
    }
}

impl Filter for Contour {
    fn name(&self) -> &'static str {
        "Contour"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("contour expects a structured dataset");
        let values = input
            .point_scalars(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point scalar field '{}'", self.field));

        let mut points = Vec::new();
        let mut point_values = Vec::new();
        let mut cells = CellSet::new();
        let mut classify = WorkCounters::new();
        let mut interp = WorkCounters::new();
        for &iso in &self.isovalues {
            let mc = marching_cubes(grid, values, iso);
            let base = points.len() as u32;
            points.extend(mc.points);
            point_values.extend(mc.point_values);
            cells.append_shifted(&mc.triangles, base);
            classify += mc.classify_work;
            interp += mc.interp_work;
        }

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            self.field.clone(),
            Association::Points,
            point_values[..n].to_vec(),
        ));
        FilterOutput::data(
            ds,
            vec![
                KernelReport::new("mc-classify", KernelClass::CaseTable, classify),
                KernelReport::new("mc-interpolate", KernelClass::Interpolate, interp),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sphere_field(grid: &UniformGrid) -> Vec<f64> {
        let c = grid.bounds().center();
        (0..grid.num_points())
            .map(|id| grid.point_coord_id(id).distance(c))
            .collect()
    }

    #[test]
    fn table_case_0_and_255_are_empty() {
        let t = triangle_table();
        assert!(t[0].is_empty());
        assert!(t[255].is_empty());
    }

    #[test]
    fn table_single_corner_cases_are_one_triangle() {
        let t = triangle_table();
        for c in 0..8 {
            assert_eq!(t[1usize << c].len(), 1, "corner {c}");
            assert_eq!(t[255 ^ (1usize << c)].len(), 1, "complement of corner {c}");
        }
    }

    #[test]
    fn table_uses_only_crossing_edges() {
        let t = triangle_table();
        for config in 0..256usize {
            let inside = |c: usize| config >> c & 1 == 1;
            for tri in &t[config] {
                for &e in tri {
                    let (a, b) = EDGES[e as usize];
                    assert_ne!(
                        inside(a),
                        inside(b),
                        "config {config:#010b} uses non-crossing edge {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn table_covers_every_crossing_edge() {
        let t = triangle_table();
        for config in 1..255usize {
            let inside = |c: usize| config >> c & 1 == 1;
            let mut used = [false; 12];
            for tri in &t[config] {
                for &e in tri {
                    used[e as usize] = true;
                }
            }
            for e in 0..12 {
                let (a, b) = EDGES[e];
                if inside(a) != inside(b) {
                    assert!(used[e], "config {config:#010b} missing crossing edge {e}");
                }
            }
        }
    }

    #[test]
    fn table_complement_uses_same_edges() {
        let t = triangle_table();
        for config in 0..256usize {
            let edges = |c: usize| {
                let mut v: Vec<u8> = t[c].iter().flatten().copied().collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            assert_eq!(edges(config), edges(255 - config));
        }
    }

    #[test]
    fn vertices_interpolate_to_isovalue() {
        let grid = UniformGrid::cube_cells(6);
        let values = sphere_field(&grid);
        let iso = 0.4;
        let mc = marching_cubes(&grid, &values, iso);
        assert!(!mc.points.is_empty());
        // Sample the (smooth) field at each vertex: should be near iso.
        let c = grid.bounds().center();
        for p in &mc.points {
            let v = p.distance(c);
            assert!(
                (v - iso).abs() < 0.05,
                "vertex {p:?} has field value {v}, isovalue {iso}"
            );
        }
    }

    /// The watertightness check that validates the generated table: every
    /// triangle edge must be shared by exactly two triangles unless it
    /// lies on the domain boundary.
    #[test]
    fn surface_is_watertight_in_interior() {
        let grid = UniformGrid::cube_cells(5);
        // A wavy field exercising many configurations, including
        // ambiguous ones.
        let values: Vec<f64> = (0..grid.num_points())
            .map(|id| {
                let p = grid.point_coord_id(id);
                (7.0 * p.x).sin() + (5.0 * p.y).cos() * (3.0 * p.z).sin()
            })
            .collect();
        for iso in [-0.6, -0.1, 0.0, 0.2, 0.7] {
            let mc = marching_cubes(&grid, &values, iso);
            let mut edge_count: HashMap<(u32, u32), u32> = HashMap::new();
            for c in 0..mc.triangles.num_cells() {
                let t = mc.triangles.cell_points(c);
                for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                    let key = (a.min(b), a.max(b));
                    *edge_count.entry(key).or_insert(0) += 1;
                }
            }
            let on_boundary = |p: Vec3| {
                let eps = 1e-9;
                p.x < eps
                    || p.y < eps
                    || p.z < eps
                    || p.x > 1.0 - eps
                    || p.y > 1.0 - eps
                    || p.z > 1.0 - eps
            };
            for ((a, b), count) in &edge_count {
                assert!(*count <= 2, "edge shared by {count} > 2 triangles");
                if *count == 1 {
                    let pa = mc.points[*a as usize];
                    let pb = mc.points[*b as usize];
                    assert!(
                        on_boundary(pa) && on_boundary(pb),
                        "open interior edge {pa:?} - {pb:?} at iso {iso}"
                    );
                }
            }
        }
    }

    #[test]
    fn sphere_surface_area_is_close() {
        // Contour of a distance field at radius r inside the unit cube:
        // area ≈ 4πr² when the sphere fits inside.
        let grid = UniformGrid::cube_cells(24);
        let values = sphere_field(&grid);
        let r = 0.35;
        let mc = marching_cubes(&grid, &values, r);
        let mut area = 0.0;
        for c in 0..mc.triangles.num_cells() {
            let t = mc.triangles.cell_points(c);
            let (a, b, cc) = (
                mc.points[t[0] as usize],
                mc.points[t[1] as usize],
                mc.points[t[2] as usize],
            );
            area += 0.5 * (b - a).cross(cc - a).length();
        }
        let expect = 4.0 * std::f64::consts::PI * r * r;
        assert!(
            (area - expect).abs() / expect < 0.05,
            "area {area} vs {expect}"
        );
    }

    #[test]
    fn triangles_oriented_outward_for_sphere_interior() {
        // Field = distance from center; inside = above isovalue means
        // *outside* the ball, so normals should point toward the center.
        // Check consistency: all signed volumes have the same sign.
        let grid = UniformGrid::cube_cells(10);
        let values = sphere_field(&grid);
        let mc = marching_cubes(&grid, &values, 0.35);
        let center = grid.bounds().center();
        let mut pos = 0;
        let mut neg = 0;
        for c in 0..mc.triangles.num_cells() {
            let t = mc.triangles.cell_points(c);
            let (a, b, cc) = (
                mc.points[t[0] as usize],
                mc.points[t[1] as usize],
                mc.points[t[2] as usize],
            );
            let n = (b - a).cross(cc - a);
            let to_center = center - (a + b + cc) / 3.0;
            if n.dot(to_center) > 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        assert!(
            pos == 0 || neg == 0,
            "inconsistent orientation: {pos} inward vs {neg} outward"
        );
    }

    #[test]
    fn empty_when_isovalue_outside_range() {
        let grid = UniformGrid::cube_cells(4);
        let values = sphere_field(&grid);
        let mc = marching_cubes(&grid, &values, 100.0);
        assert!(mc.points.is_empty());
        assert_eq!(mc.triangles.num_cells(), 0);
        // Classification still visited every cell.
        assert_eq!(mc.classify_work.items, grid.num_cells() as u64);
    }

    #[test]
    fn contour_filter_multiple_isovalues() {
        let grid = UniformGrid::cube_cells(8);
        let values = sphere_field(&grid);
        let n = grid.num_points();
        let ds = DataSet::uniform(grid).with_field(Field::scalar("d", Association::Points, values));
        let _ = n;
        let filter = Contour::new("d", vec![0.3, 0.4]);
        let out = filter.execute(&ds);
        let result = out.dataset.unwrap();
        assert!(result.num_cells() > 0);
        assert_eq!(out.kernels.len(), 2);
        assert_eq!(out.kernels[0].class, KernelClass::CaseTable);
        // Two isovalues → classification visited every cell twice.
        assert_eq!(out.kernels[0].work.items, 2 * 8 * 8 * 8);
    }

    #[test]
    fn spanning_picks_interior_isovalues() {
        let grid = UniformGrid::cube_cells(4);
        let values = sphere_field(&grid);
        let ds = DataSet::uniform(grid).with_field(Field::scalar("d", Association::Points, values));
        let c = Contour::spanning("d", &ds, 10);
        assert_eq!(c.isovalues.len(), 10);
        let (lo, hi) = ds.field("d").unwrap().scalar_range().unwrap();
        for &v in &c.isovalues {
            assert!(v > lo && v < hi);
        }
    }
}
