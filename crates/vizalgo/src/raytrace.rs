//! Ray tracing (§III-B7): render the dataset's external surface.
//!
//! Mirrors the three steps the paper identifies inside VTK-m's ray
//! tracer: (1) *gather triangles / find external faces* — the
//! data-intensive part that dominates its runtime profile, (2) *build a
//! spatial acceleration structure* (a BVH), and (3) *trace the rays*.
//! Output is an image database rendered from cameras orbiting the data
//! set (50 per visualization cycle in the paper).

use crate::colormap::ColorMap;
use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rayon::prelude::*;
use vizmesh::{Aabb, Camera, DataSet, Image, Ray, Vec3, WorkCounters};

/// A shading-ready triangle: positions plus per-vertex scalar.
#[derive(Debug, Clone, Copy)]
pub struct Triangle {
    pub p: [Vec3; 3],
    pub scalar: [f64; 3],
}

impl Triangle {
    pub fn centroid(&self) -> Vec3 {
        (self.p[0] + self.p[1] + self.p[2]) / 3.0
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(self.p.iter().copied())
    }

    pub fn normal(&self) -> Vec3 {
        (self.p[1] - self.p[0])
            .cross(self.p[2] - self.p[0])
            .normalized()
    }

    /// Möller–Trumbore. Returns `(t, u, v)` of the nearest forward hit.
    pub fn intersect(&self, ray: &Ray) -> Option<(f64, f64, f64)> {
        const EPS: f64 = 1e-12;
        let e1 = self.p[1] - self.p[0];
        let e2 = self.p[2] - self.p[0];
        let h = ray.direction.cross(e2);
        let det = e1.dot(h);
        if det.abs() < EPS {
            return None;
        }
        let inv = 1.0 / det;
        let s = ray.origin - self.p[0];
        let u = s.dot(h) * inv;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.direction.dot(q) * inv;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv;
        if t > EPS {
            Some((t, u, v))
        } else {
            None
        }
    }
}

/// Extract the external faces of a structured dataset as triangles with
/// the point scalar attached. For a uniform grid the external faces are
/// the six domain boundary faces; the extraction still walks every cell
/// via face parity, which is what makes this step data-intensive.
pub fn external_face_triangles(input: &DataSet, field: &str) -> (Vec<Triangle>, WorkCounters) {
    let grid = input
        .as_uniform()
        // lint: infallible because the study harness only feeds uniform grids
        .expect("external-face extraction expects a structured dataset");
    let values = input
        .point_scalars(field)
        // lint: infallible because the pipeline registers the field before running
        .unwrap_or_else(|| panic!("missing point scalar field '{field}'"));
    let [cx, cy, cz] = grid.cell_dims();
    // Exactly 2 boundary quads per face-pair slab, 2 triangles per quad.
    let quads = 2 * (cx * cy + cy * cz + cz * cx);
    let mut tris = Vec::with_capacity(2 * quads);
    let mut work = WorkCounters::new();

    // Each cell contributes the faces that lie on the domain boundary.
    // Faces as corner-slot quads matching cell_point_ids order.
    const CELL_FACES: [([usize; 4], [isize; 3]); 6] = [
        ([0, 3, 2, 1], [0, 0, -1]),
        ([4, 5, 6, 7], [0, 0, 1]),
        ([0, 1, 5, 4], [0, -1, 0]),
        ([1, 2, 6, 5], [1, 0, 0]),
        ([2, 3, 7, 6], [0, 1, 0]),
        ([3, 0, 4, 7], [-1, 0, 0]),
    ];
    for c in 0..grid.num_cells() {
        let [i, j, k] = grid.cell_ijk(c);
        // Visit every cell (the gather is data intensive even when the
        // cell is interior and contributes nothing).
        work.tally(1, 22, 0, 64, 0);
        for (slots, dir) in CELL_FACES {
            let boundary = match dir {
                [0, 0, -1] => k == 0,
                [0, 0, 1] => k == cz - 1,
                [0, -1, 0] => j == 0,
                [0, 1, 0] => j == cy - 1,
                [1, 0, 0] => i == cx - 1,
                [-1, 0, 0] => i == 0,
                // lint: infallible because CELL_FACES holds only the six axis directions
                _ => unreachable!(),
            };
            if !boundary {
                continue;
            }
            let ids = grid.cell_point_ids(c);
            let corners = grid.cell_corners(c);
            let quad_p: [Vec3; 4] = slots.map(|s| corners[s]);
            let quad_v: [f64; 4] = slots.map(|s| values[ids[s]]);
            tris.push(Triangle {
                p: [quad_p[0], quad_p[1], quad_p[2]],
                scalar: [quad_v[0], quad_v[1], quad_v[2]],
            });
            tris.push(Triangle {
                p: [quad_p[0], quad_p[2], quad_p[3]],
                scalar: [quad_v[0], quad_v[2], quad_v[3]],
            });
            work.tally(2, 48, 6, 128, 144);
        }
    }
    work.working_set_bytes = (tris.len() * std::mem::size_of::<Triangle>()) as u64;
    (tris, work)
}

/// A node of the BVH: either internal (child indices) or a leaf (triangle
/// range in the reordered index array).
#[derive(Debug, Clone, Copy)]
struct BvhNode {
    bounds: Aabb,
    /// Left child index, or triangle range start for leaves.
    a: u32,
    /// Right child index, or triangle range end for leaves.
    b: u32,
    leaf: bool,
}

/// A median-split bounding volume hierarchy over triangles, stored as a
/// flat preorder node array and traversed with a fixed-size explicit
/// stack (no recursion, no per-ray allocation).
pub struct Bvh {
    nodes: Vec<BvhNode>,
    /// Triangle indices reordered so each leaf is a contiguous range.
    order: Vec<u32>,
}

const LEAF_SIZE: usize = 4;

/// Traversal stack depth. Median splits halve ranges, so tree depth is
/// ≤ ⌈log₂(n / LEAF_SIZE)⌉ + 1 (≤ 33 even at u32::MAX triangles), and
/// the stack holds at most depth + 1 entries.
const MAX_DEPTH: usize = 64;

impl Bvh {
    /// Build over `tris`. Returns the structure and the build work.
    ///
    /// The build is iterative over an explicit range stack; nodes land in
    /// the same DFS preorder the old recursion produced (parent, left
    /// subtree, right subtree), so traversal order — and the visit/test
    /// statistics feeding the power model — is unchanged.
    pub fn build(tris: &[Triangle]) -> (Bvh, WorkCounters) {
        let mut work = WorkCounters::new();
        let mut order: Vec<u32> = (0..tris.len() as u32).collect();
        let mut nodes: Vec<BvhNode> =
            Vec::with_capacity((2 * tris.len() / LEAF_SIZE).next_power_of_two());
        // Pending ranges: (lo, hi, parent node, is-left-child). Children
        // patch their parent's slot on creation; pushing the right range
        // first means the left child pops next, preserving preorder.
        let mut pending: Vec<(usize, usize, u32, bool)> = Vec::with_capacity(MAX_DEPTH);
        if !tris.is_empty() {
            pending.push((0, tris.len(), u32::MAX, false));
        }
        while let Some((lo, hi, parent, is_left)) = pending.pop() {
            let mut bounds = Aabb::empty();
            for &t in &order[lo..hi] {
                bounds.union(&tris[t as usize].bounds());
            }
            work.tally((hi - lo) as u64, 30, 18, 72, 8);
            let me = nodes.len() as u32;
            nodes.push(BvhNode {
                bounds,
                a: lo as u32,
                b: hi as u32,
                leaf: true,
            });
            if parent != u32::MAX {
                let p = &mut nodes[parent as usize];
                if is_left {
                    p.a = me;
                } else {
                    p.b = me;
                }
                p.leaf = false;
            }
            if hi - lo <= LEAF_SIZE {
                continue;
            }
            // Median split on the longest axis of the centroid bounds.
            let mut cb = Aabb::empty();
            for &t in &order[lo..hi] {
                cb.grow(tris[t as usize].centroid());
            }
            let axis = cb.longest_axis();
            let mid = (lo + hi) / 2;
            order[lo..hi].select_nth_unstable_by((hi - lo) / 2, |&x, &y| {
                tris[x as usize].centroid()[axis].total_cmp(&tris[y as usize].centroid()[axis])
            });
            work.tally((hi - lo) as u64, 16, 4, 28, 4);
            pending.push((mid, hi, me, false));
            pending.push((lo, mid, me, true));
        }
        work.working_set_bytes =
            (nodes.len() * std::mem::size_of::<BvhNode>() + tris.len() * 4) as u64;
        (Bvh { nodes, order }, work)
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nearest hit: `(t, triangle index, u, v)`. Also counts the nodes
    /// visited and triangles tested into `stats = (nodes, tests)`.
    pub fn intersect(
        &self,
        tris: &[Triangle],
        ray: &Ray,
        stats: &mut (u64, u64),
    ) -> Option<(f64, u32, f64, f64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let inv = ray.inv_direction();
        let mut best: Option<(f64, u32, f64, f64)> = None;
        let mut t_max = f64::INFINITY;
        // Fixed-size stack on the caller's stack frame: this runs once
        // per ray, and a heap-backed Vec here was the hottest allocation
        // in the whole trace step.
        let mut stack = [0u32; MAX_DEPTH];
        let mut top = 1usize;
        while top > 0 {
            top -= 1;
            let ni = stack[top];
            let node = &self.nodes[ni as usize];
            stats.0 += 1;
            if node
                .bounds
                .intersect_ray(ray.origin, inv, 0.0, t_max)
                .is_none()
            {
                continue;
            }
            if node.leaf {
                for &ti in &self.order[node.a as usize..node.b as usize] {
                    stats.1 += 1;
                    if let Some((t, u, v)) = tris[ti as usize].intersect(ray) {
                        if t < t_max {
                            t_max = t;
                            best = Some((t, ti, u, v));
                        }
                    }
                }
            } else {
                debug_assert!(top + 2 <= MAX_DEPTH, "BVH deeper than MAX_DEPTH");
                stack[top] = node.a;
                stack[top + 1] = node.b;
                top += 2;
            }
        }
        best
    }
}

/// The ray-tracing filter: external faces → BVH → image database.
#[derive(Debug, Clone)]
pub struct RayTracer {
    pub field: String,
    pub width: usize,
    pub height: usize,
    pub num_cameras: usize,
}

impl RayTracer {
    /// The paper's configuration: 50 cameras orbiting the data set.
    pub fn paper_default(field: impl Into<String>) -> Self {
        RayTracer {
            field: field.into(),
            width: 128,
            height: 128,
            num_cameras: 50,
        }
    }

    pub fn new(field: impl Into<String>, width: usize, height: usize, num_cameras: usize) -> Self {
        assert!(width > 0 && height > 0 && num_cameras > 0);
        RayTracer {
            field: field.into(),
            width,
            height,
            num_cameras,
        }
    }
}

impl Filter for RayTracer {
    fn name(&self) -> &'static str {
        "Ray Tracing"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        // Step 1: gather triangles / find external faces.
        let (tris, gather_work) = external_face_triangles(input, &self.field);

        // Step 2: build the BVH.
        let (bvh, build_work) = Bvh::build(&tris);

        // Step 3: trace rays from each orbit camera.
        let (lo, hi) = input
            .field(&self.field)
            .and_then(|f| f.scalar_range())
            .unwrap_or((0.0, 1.0));
        let cmap = ColorMap::cool_to_warm();
        let bounds = input.bounds();
        let cameras = Camera::orbit(&bounds, self.num_cameras);

        let mut trace_work = WorkCounters::new();
        let mut images = Vec::with_capacity(self.num_cameras);
        let width = self.width;
        // Per-row pixel buffers and traversal stats, reused across every
        // camera: only the first camera pays the row allocations.
        let mut row_buf: Vec<(Vec<([f32; 4], f32)>, (u64, u64))> = Vec::with_capacity(self.height);
        row_buf.resize_with(self.height, Default::default);
        for cam in &cameras {
            let mut img = Image::new(self.width, self.height);
            row_buf
                .par_iter_mut()
                .enumerate()
                .for_each(|(y, (row, stats))| {
                    *stats = (0, 0);
                    row.clear();
                    row.extend((0..width).map(|x| {
                        let ray = cam.pixel_ray(x, y, width, self.height);
                        match bvh.intersect(&tris, &ray, stats) {
                            Some((t, ti, u, v)) => {
                                let tri = &tris[ti as usize];
                                let s = tri.scalar[0] * (1.0 - u - v)
                                    + tri.scalar[1] * u
                                    + tri.scalar[2] * v;
                                let mut c = cmap.sample_range(s, lo, hi);
                                // Headlight Lambert shading.
                                let ndl = tri.normal().dot(-ray.direction).abs();
                                let shade = (0.35 + 0.65 * ndl) as f32;
                                c[0] *= shade;
                                c[1] *= shade;
                                c[2] *= shade;
                                (c, t as f32)
                            }
                            None => ([0.0; 4], f32::INFINITY),
                        }
                    }));
                });
            let mut nodes_visited = 0u64;
            let mut tri_tests = 0u64;
            for (y, (row, stats)) in row_buf.iter().enumerate() {
                for (x, &(c, d)) in row.iter().enumerate() {
                    if d.is_finite() {
                        img.set_if_closer(x, y, d, c);
                    }
                }
                nodes_visited += stats.0;
                tri_tests += stats.1;
            }
            let rays = (self.width * self.height) as u64;
            trace_work.tally(rays, 60, 24, 48, 16);
            trace_work.tally(nodes_visited, 28, 10, 32, 0);
            trace_work.tally(tri_tests, 52, 38, 80, 0);
            images.push(img);
        }
        trace_work.working_set_bytes = gather_work
            .working_set_bytes
            .saturating_add((bvh.num_nodes() * std::mem::size_of::<BvhNode>()) as u64);

        FilterOutput::rendered(
            images,
            vec![
                KernelReport::new("rt-gather-faces", KernelClass::GatherScatter, gather_work),
                KernelReport::new("rt-bvh-build", KernelClass::BvhBuild, build_work),
                KernelReport::new("rt-trace", KernelClass::RayTraverse, trace_work),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{Association, Field, UniformGrid};

    fn dataset(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn external_faces_count_for_cube() {
        let ds = dataset(4);
        let (tris, work) = external_face_triangles(&ds, "f");
        // 6 faces × 4×4 cells × 2 triangles.
        assert_eq!(tris.len(), 6 * 16 * 2);
        assert_eq!(work.items, 64 + tris.len() as u64);
    }

    #[test]
    fn moller_trumbore_hit_and_miss() {
        let tri = Triangle {
            p: [Vec3::ZERO, Vec3::X, Vec3::Y],
            scalar: [0.0; 3],
        };
        let hit = tri.intersect(&Ray::new(Vec3::new(0.2, 0.2, 1.0), -Vec3::Z));
        let (t, u, v) = hit.unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        assert!((u - 0.2).abs() < 1e-12 && (v - 0.2).abs() < 1e-12);
        // Miss: outside the triangle.
        assert!(tri
            .intersect(&Ray::new(Vec3::new(0.9, 0.9, 1.0), -Vec3::Z))
            .is_none());
        // Miss: parallel ray.
        assert!(tri
            .intersect(&Ray::new(Vec3::new(0.2, 0.2, 1.0), Vec3::X))
            .is_none());
        // Miss: behind the origin.
        assert!(tri
            .intersect(&Ray::new(Vec3::new(0.2, 0.2, -1.0), -Vec3::Z))
            .is_none());
    }

    #[test]
    fn bvh_finds_same_hit_as_brute_force() {
        let ds = dataset(5);
        let (tris, _) = external_face_triangles(&ds, "f");
        let (bvh, _) = Bvh::build(&tris);
        let cam = Camera::framing(&ds.bounds());
        for (x, y) in [(0, 0), (16, 16), (31, 7), (9, 28)] {
            let ray = cam.pixel_ray(x, y, 32, 32);
            let mut stats = (0, 0);
            let fast = bvh.intersect(&tris, &ray, &mut stats).map(|(t, ..)| t);
            let brute = tris
                .iter()
                .filter_map(|tr| tr.intersect(&ray).map(|(t, ..)| t))
                .min_by(f64::total_cmp);
            match (fast, brute) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn bvh_visits_fewer_nodes_than_triangles() {
        let ds = dataset(8);
        let (tris, _) = external_face_triangles(&ds, "f");
        let (bvh, _) = Bvh::build(&tris);
        let cam = Camera::framing(&ds.bounds());
        let ray = cam.pixel_ray(16, 16, 32, 32);
        let mut stats = (0u64, 0u64);
        bvh.intersect(&tris, &ray, &mut stats).unwrap();
        assert!(
            stats.1 < tris.len() as u64 / 4,
            "tested {} of {} triangles",
            stats.1,
            tris.len()
        );
    }

    #[test]
    fn render_covers_center_of_image() {
        let ds = dataset(4);
        let rt = RayTracer::new("f", 32, 32, 2);
        let out = rt.execute(&ds);
        assert_eq!(out.images.len(), 2);
        for img in &out.images {
            // The cube fills the middle of the frame.
            assert!(img.get(16, 16)[3] > 0.0, "center pixel empty");
            assert!(img.coverage() > 0.1 && img.coverage() < 0.9);
        }
    }

    #[test]
    fn kernel_order_matches_paper_steps() {
        let ds = dataset(3);
        let out = RayTracer::new("f", 8, 8, 1).execute(&ds);
        let classes: Vec<_> = out.kernels.iter().map(|k| k.class).collect();
        assert_eq!(
            classes,
            vec![
                KernelClass::GatherScatter,
                KernelClass::BvhBuild,
                KernelClass::RayTraverse
            ]
        );
    }

    #[test]
    fn empty_bvh_misses_everything() {
        let (bvh, _) = Bvh::build(&[]);
        let mut stats = (0, 0);
        assert!(bvh
            .intersect(&[], &Ray::new(Vec3::ZERO, Vec3::X), &mut stats)
            .is_none());
    }

    #[test]
    fn iterative_bvh_matches_brute_force_on_random_scene() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // A seeded soup of 400 small triangles: enough to force several
        // levels of median splits and exercise the explicit-stack
        // traversal against the O(n) oracle.
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut tris = Vec::with_capacity(400);
        for _ in 0..400 {
            let base = Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            );
            let e1 = Vec3::new(
                rng.random_range(-0.2..0.2),
                rng.random_range(-0.2..0.2),
                rng.random_range(-0.2..0.2),
            );
            let e2 = Vec3::new(
                rng.random_range(-0.2..0.2),
                rng.random_range(-0.2..0.2),
                rng.random_range(-0.2..0.2),
            );
            tris.push(Triangle {
                p: [base, base + e1, base + e2],
                scalar: [0.0; 3],
            });
        }
        let (bvh, _) = Bvh::build(&tris);
        let mut rays_hit = 0;
        for i in 0..64 {
            let origin = Vec3::new(
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
                2.0,
            );
            let target = Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            );
            let ray = Ray::new(origin, (target - origin).normalized());
            let mut stats = (0, 0);
            let fast = bvh.intersect(&tris, &ray, &mut stats);
            let brute = tris
                .iter()
                .enumerate()
                .filter_map(|(ti, tr)| tr.intersect(&ray).map(|(t, u, v)| (t, ti as u32, u, v)))
                .min_by(|a, b| a.0.total_cmp(&b.0));
            match (fast, brute) {
                (Some((ta, ia, ..)), Some((tb, ib, ..))) => {
                    assert!((ta - tb).abs() < 1e-12, "ray {i}: t {ta} vs {tb}");
                    assert_eq!(ia, ib, "ray {i}: different nearest triangle");
                    rays_hit += 1;
                }
                (None, None) => {}
                other => panic!("ray {i} mismatch: {other:?}"),
            }
        }
        assert!(rays_hit > 10, "only {rays_hit} rays hit — scene too sparse");
    }
}
