//! Threshold: keep cells whose scalar lies in a range (§III-B2).

use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rayon::prelude::*;
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, Vec3, WorkCounters};

/// Which points of a cell must satisfy the range for the cell to be kept
/// when thresholding a point-centered field (VTK-m's threshold policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdPolicy {
    AllPoints,
    AnyPoint,
}

/// The threshold filter: iterates over every cell and compares its scalar
/// (cell-centered directly, or point-centered under a policy) against
/// `[lo, hi]`; kept cells are copied to an unstructured output.
#[derive(Debug, Clone)]
pub struct Threshold {
    pub field: String,
    pub lo: f64,
    pub hi: f64,
    pub policy: ThresholdPolicy,
}

impl Threshold {
    pub fn new(field: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "threshold range is inverted: [{lo}, {hi}]");
        Threshold {
            field: field.into(),
            lo,
            hi,
            policy: ThresholdPolicy::AllPoints,
        }
    }

    /// Keep the upper `frac` fraction of the field's range — the
    /// configuration used for the paper-style energy threshold.
    pub fn upper_fraction(field: impl Into<String>, input: &DataSet, frac: f64) -> Self {
        let field = field.into();
        let (lo, hi) = input
            .field(&field)
            .and_then(|f| f.scalar_range())
            .unwrap_or((0.0, 1.0));
        let cut = hi - (hi - lo) * frac.clamp(0.0, 1.0);
        Threshold::new(field, cut, hi)
    }

    #[inline]
    fn in_range(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

impl Filter for Threshold {
    fn name(&self) -> &'static str {
        "Threshold"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("threshold expects a structured dataset");

        // Phase 1: classify every cell (streaming compare).
        let cell_vals = input.cell_scalars(&self.field);
        let point_vals = input.point_scalars(&self.field);
        assert!(
            cell_vals.is_some() || point_vals.is_some(),
            "missing scalar field '{}'",
            self.field
        );
        let num_cells = grid.num_cells();
        let keep: Vec<bool> = (0..num_cells)
            .into_par_iter()
            .map(|c| {
                if let Some(vals) = cell_vals {
                    self.in_range(vals[c])
                } else {
                    // lint: infallible because the assert above guarantees point values
                    let vals = point_vals.unwrap();
                    let ids = grid.cell_point_ids(c);
                    match self.policy {
                        ThresholdPolicy::AllPoints => ids.iter().all(|&p| self.in_range(vals[p])),
                        ThresholdPolicy::AnyPoint => ids.iter().any(|&p| self.in_range(vals[p])),
                    }
                }
            })
            .collect();
        let mut classify = WorkCounters::new();
        let bytes_per_cell = if cell_vals.is_some() { 8 } else { 64 + 32 };
        classify.tally(num_cells as u64, 12, 2, bytes_per_cell, 1);
        classify.working_set_bytes = input
            .field(&self.field)
            .map(|f| f.data.num_bytes())
            .unwrap_or(0);

        // Phase 2: gather the kept cells into a compact unstructured mesh.
        let mut gather = WorkCounters::new();
        let mut point_map: Vec<u32> = vec![u32::MAX; grid.num_points()];
        let mut points: Vec<Vec3> = Vec::new();
        let kept_count = keep.iter().filter(|&&k| k).count();
        let mut cells = CellSet::with_capacity(kept_count, kept_count * 8);
        let mut out_cell_vals: Vec<f64> = Vec::with_capacity(kept_count);
        for c in 0..num_cells {
            if !keep[c] {
                continue;
            }
            let ids = grid.cell_point_ids(c);
            let mut conn = [0u32; 8];
            for (slot, &pid) in ids.iter().enumerate() {
                if point_map[pid] == u32::MAX {
                    point_map[pid] = points.len() as u32;
                    points.push(grid.point_coord_id(pid));
                    gather.tally(1, 10, 3, 24, 28);
                }
                conn[slot] = point_map[pid];
            }
            cells.push(CellShape::Hexahedron, &conn);
            if let Some(vals) = cell_vals {
                out_cell_vals.push(vals[c]);
            }
            gather.tally(1, 30, 0, 32, 40);
        }

        let mut ds = DataSet::explicit(points, cells);
        if cell_vals.is_some() {
            ds.add_field(Field::scalar(
                self.field.clone(),
                Association::Cells,
                out_cell_vals,
            ));
        }
        FilterOutput::data(
            ds,
            vec![
                KernelReport::new("threshold-classify", KernelClass::CellClassify, classify),
                KernelReport::new("threshold-gather", KernelClass::GatherScatter, gather),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::UniformGrid;

    /// A grid with cell scalar = x index of the cell.
    fn x_ramp(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|c| grid.cell_ijk(c)[0] as f64)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("v", Association::Cells, vals))
    }

    #[test]
    fn keeps_exactly_matching_cells() {
        let ds = x_ramp(4);
        let out = Threshold::new("v", 1.0, 2.0).execute(&ds);
        let result = out.dataset.unwrap();
        // x ∈ {1, 2} → half of 64 cells.
        assert_eq!(result.num_cells(), 32);
        for &v in result.cell_scalars("v").unwrap() {
            assert!((1.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn empty_range_keeps_nothing() {
        let ds = x_ramp(4);
        let out = Threshold::new("v", 100.0, 200.0).execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 0);
        // Classification still visited every cell.
        assert_eq!(out.kernels[0].work.items, 64);
    }

    #[test]
    fn full_range_keeps_everything() {
        let ds = x_ramp(3);
        let out = Threshold::new("v", 0.0, 3.0).execute(&ds);
        let result = out.dataset.unwrap();
        assert_eq!(result.num_cells(), 27);
        // Shared points are welded: a 3³-cell cube has 4³ points.
        assert_eq!(result.num_points(), 64);
    }

    #[test]
    fn point_field_all_points_policy() {
        let grid = UniformGrid::cube_cells(2);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        let ds = DataSet::uniform(grid).with_field(Field::scalar("v", Association::Points, vals));
        // AllPoints with range [0, 0.5]: only cells whose 8 corners all
        // have x ≤ 0.5, i.e. the 4 cells in the left half.
        let out = Threshold::new("v", 0.0, 0.5).execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 4);
        // AnyPoint keeps every cell (all touch x ≤ 0.5).
        let mut t = Threshold::new("v", 0.0, 0.5);
        t.policy = ThresholdPolicy::AnyPoint;
        let out = t.execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 8);
    }

    #[test]
    fn output_cells_are_hexahedra_with_valid_connectivity() {
        let ds = x_ramp(3);
        let out = Threshold::new("v", 0.0, 1.0).execute(&ds);
        let result = out.dataset.unwrap();
        let (points, cells) = result.as_explicit().unwrap();
        for (shape, conn) in cells.iter() {
            assert_eq!(shape, CellShape::Hexahedron);
            assert!(conn.iter().all(|&p| (p as usize) < points.len()));
        }
    }

    #[test]
    fn upper_fraction_selects_hot_cells() {
        let ds = x_ramp(4); // range [0, 3]
        let t = Threshold::upper_fraction("v", &ds, 0.5);
        assert!((t.lo - 1.5).abs() < 1e-12);
        assert_eq!(t.hi, 3.0);
    }

    #[test]
    fn work_scales_with_input_cells() {
        let small = Threshold::new("v", 0.0, 0.0).execute(&x_ramp(2));
        let large = Threshold::new("v", 0.0, 0.0).execute(&x_ramp(4));
        assert_eq!(small.kernels[0].work.items, 8);
        assert_eq!(large.kernels[0].work.items, 64);
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        let _ = Threshold::new("v", 2.0, 1.0);
    }
}
