//! Gradient-magnitude filter — an *extension* algorithm beyond the
//! paper's eight.
//!
//! The paper's future work asks for "other visualization algorithms [to]
//! be classified so informed decisions can be made regarding how to
//! allocate power" (§VIII). Gradient computation is a ubiquitous
//! building block (shading normals, feature detection, vorticity) with a
//! different mix than any of the eight: a fixed 6-point stencil per
//! mesh point, moderately FP-dense but fully streaming. The
//! `classify_new_algorithm` example runs it through the same study
//! machinery and reports its class.

use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rayon::prelude::*;
use vizmesh::{Association, DataSet, Field, UniformGrid, Vec3, WorkCounters};

/// Computes `|∇f|` (and optionally the gradient vector) of a
/// point-centered scalar with central differences (one-sided on the
/// boundary), producing a structured dataset with the derived fields.
#[derive(Debug, Clone)]
pub struct Gradient {
    pub field: String,
    /// Also emit the vector field `<field>_grad`.
    pub emit_vector: bool,
}

impl Gradient {
    pub fn new(field: impl Into<String>) -> Self {
        Gradient {
            field: field.into(),
            emit_vector: false,
        }
    }

    pub fn with_vectors(mut self) -> Self {
        self.emit_vector = true;
        self
    }

    /// Gradient at point (i, j, k) by central/one-sided differences.
    fn gradient_at(grid: &UniformGrid, values: &[f64], i: usize, j: usize, k: usize) -> Vec3 {
        let [nx, ny, nz] = grid.point_dims();
        let s = grid.spacing();
        let d = |axis: usize, idx: usize, n: usize, h: f64| -> f64 {
            let at = |x: usize| match axis {
                0 => values[grid.point_id(x, j, k)],
                1 => values[grid.point_id(i, x, k)],
                _ => values[grid.point_id(i, j, x)],
            };
            if idx == 0 {
                (at(1) - at(0)) / h
            } else if idx == n - 1 {
                (at(n - 1) - at(n - 2)) / h
            } else {
                (at(idx + 1) - at(idx - 1)) / (2.0 * h)
            }
        };
        Vec3::new(d(0, i, nx, s.x), d(1, j, ny, s.y), d(2, k, nz, s.z))
    }
}

impl Filter for Gradient {
    fn name(&self) -> &'static str {
        "Gradient"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("gradient expects a structured dataset");
        let values = input
            .point_scalars(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point scalar field '{}'", self.field));
        let n = grid.num_points();

        let grads: Vec<Vec3> = (0..n)
            .into_par_iter()
            .map(|id| {
                let [i, j, k] = grid.point_ijk(id);
                Self::gradient_at(grid, values, i, j, k)
            })
            .collect();
        let mags: Vec<f64> = grads.par_iter().map(|g| g.length()).collect();

        let mut work = WorkCounters::new();
        // 6 neighbour loads, 3 divisions, magnitude: ~40 instr, 14 flops.
        work.tally(n as u64, 40, 14, 6 * 8 + 24, 8 + 24);
        work.working_set_bytes = (n * 8) as u64;

        let mut ds = DataSet::uniform(grid.clone());
        ds.add_field(Field::scalar(
            format!("{}_gradmag", self.field),
            Association::Points,
            mags,
        ));
        if self.emit_vector {
            ds.add_field(Field::vector(
                format!("{}_grad", self.field),
                Association::Points,
                grads,
            ));
        }
        FilterOutput::data(
            ds,
            vec![KernelReport::new(
                "gradient-stencil",
                KernelClass::SignedDistance,
                work,
            )],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_with(f: impl Fn(Vec3) -> f64, n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| f(grid.point_coord_id(p)))
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn gradient_of_linear_field_is_exact() {
        let ds = dataset_with(|p| 3.0 * p.x - 2.0 * p.y + 0.5 * p.z, 6);
        let out = Gradient::new("f").with_vectors().execute(&ds);
        let result = out.dataset.unwrap();
        let grads = result.point_vectors("f_grad").unwrap();
        let expect = Vec3::new(3.0, -2.0, 0.5);
        for g in grads {
            assert!((*g - expect).length() < 1e-9, "gradient {g:?}");
        }
        let mags = result.point_scalars("f_gradmag").unwrap();
        for &m in mags {
            assert!((m - expect.length()).abs() < 1e-9);
        }
    }

    /// A trilinear ramp is linear along each axis separately, so both the
    /// central and the one-sided differences are *exact* — the stencil
    /// must reproduce the analytic gradient at every point, boundaries
    /// included.
    #[test]
    fn gradient_of_trilinear_ramp_is_exact_everywhere() {
        let (a, b, c, d) = (0.7, 1.5, -2.25, 0.5);
        let (e, ff, g, h) = (3.0, -1.0, 0.25, 4.0);
        let field = |p: Vec3| {
            a + b * p.x
                + c * p.y
                + d * p.z
                + e * p.x * p.y
                + ff * p.y * p.z
                + g * p.x * p.z
                + h * p.x * p.y * p.z
        };
        let ds = dataset_with(field, 5);
        let out = Gradient::new("f").with_vectors().execute(&ds);
        let result = out.dataset.unwrap();
        let grid = result.as_uniform().unwrap().clone();
        let grads = result.point_vectors("f_grad").unwrap();
        let mags = result.point_scalars("f_gradmag").unwrap();
        for id in 0..grid.num_points() {
            let p = grid.point_coord_id(id);
            let expect = Vec3::new(
                b + e * p.y + g * p.z + h * p.y * p.z,
                c + e * p.x + ff * p.z + h * p.x * p.z,
                d + ff * p.y + g * p.x + h * p.x * p.y,
            );
            assert!(
                (grads[id] - expect).length() < 1e-9,
                "point {p:?}: {:?} vs {expect:?}",
                grads[id]
            );
            assert!((mags[id] - expect.length()).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_of_constant_field_is_zero() {
        let ds = dataset_with(|_| 7.0, 4);
        let out = Gradient::new("f").execute(&ds);
        let mags = out.dataset.unwrap();
        assert!(mags
            .point_scalars("f_gradmag")
            .unwrap()
            .iter()
            .all(|&m| m.abs() < 1e-12));
    }

    #[test]
    fn boundary_uses_one_sided_differences() {
        // Quadratic in x: gradient 2x; at x = 0 the one-sided estimate is
        // (f(h) - f(0))/h = h, not 0 — still finite and sensible.
        let ds = dataset_with(|p| p.x * p.x, 8);
        let out = Gradient::new("f").with_vectors().execute(&ds);
        let result = out.dataset.unwrap();
        let grid = result.as_uniform().unwrap();
        let grads = result.point_vectors("f_grad").unwrap();
        // Interior points: central difference of x² is exact.
        let mid = grid.point_id(4, 4, 4);
        assert!((grads[mid].x - 2.0 * 0.5).abs() < 1e-9);
        // Boundary gradient is finite.
        assert!(grads[grid.point_id(0, 0, 0)].is_finite());
    }

    #[test]
    fn work_scales_with_points() {
        let small = Gradient::new("f").execute(&dataset_with(|p| p.x, 4));
        let large = Gradient::new("f").execute(&dataset_with(|p| p.x, 8));
        let ws = small.kernels[0].work.items;
        let wl = large.kernels[0].work.items;
        assert_eq!(ws, 125);
        assert_eq!(wl, 729);
    }
}
