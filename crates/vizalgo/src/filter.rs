//! The common filter interface and kernel instrumentation types.

use serde::{Deserialize, Serialize};
use vizmesh::{DataSet, Image, WorkCounters};

/// Microarchitectural flavor of a kernel, used by the `vizpower`
/// characterization bridge to assign an instruction-mix signature
/// (core CPI, FP activity, cache locality) to measured work counts.
///
/// The tags match the kernel taxonomy in §VI of the paper: cell-centered
/// streaming kernels (low IPC, data-bound), interpolation/signed-distance
/// kernels (moderate FP), and the image-order compute kernels (high IPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Streaming per-cell classification/comparison (threshold, clip
    /// classify): load-store dominated, minimal FP.
    CellClassify,
    /// Marching-cubes case classification: corner sign gathering plus
    /// case-table indexing (contour, slice). More ILP than a pure
    /// streaming compare.
    CaseTable,
    /// Edge interpolation and triangle generation (contour, slice).
    Interpolate,
    /// Per-point implicit-function evaluation (slice planes, sphere
    /// distances): FP-dense but streaming.
    SignedDistance,
    /// Output compaction: gathers/scatters of kept cells and points.
    GatherScatter,
    /// Tetrahedral subdivision and clipping (clip, isovolume).
    TetClip,
    /// Spatial acceleration structure construction (ray tracing).
    BvhBuild,
    /// BVH traversal and triangle intersection (ray tracing).
    RayTraverse,
    /// Volume sampling + compositing loop (volume rendering).
    RayMarch,
    /// RK4 integration of particle trajectories (advection).
    Rk4Advect,
    /// Per-pixel shading / color mapping.
    Shade,
    /// Hydrodynamics kernels (the simulation side of in situ coupling).
    Simulation,
}

/// Work performed by one kernel invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    pub name: String,
    pub class: KernelClass,
    pub work: WorkCounters,
}

impl KernelReport {
    pub fn new(name: impl Into<String>, class: KernelClass, work: WorkCounters) -> Self {
        KernelReport {
            name: name.into(),
            class,
            work,
        }
    }
}

/// What a filter produced: data, images (for the rendering algorithms),
/// and the instrumentation trail.
#[derive(Debug, Clone)]
pub struct FilterOutput {
    /// Extracted geometry (empty explicit dataset for pure renderers).
    pub dataset: Option<DataSet>,
    /// Image database (for ray tracing / volume rendering).
    pub images: Vec<Image>,
    /// Per-kernel work reports, in execution order.
    pub kernels: Vec<KernelReport>,
    /// Per-primitive traffic reports, for filters executed through the
    /// DPP backend (empty for traditional executions); journaled as
    /// schema-v6 `Primitive` spans by the bench/conformance drivers.
    pub primitives: Vec<crate::dpp::PrimitiveReport>,
}

impl FilterOutput {
    pub fn data(dataset: DataSet, kernels: Vec<KernelReport>) -> Self {
        FilterOutput {
            dataset: Some(dataset),
            images: Vec::new(),
            kernels,
            primitives: Vec::new(),
        }
    }

    /// [`data`](FilterOutput::data), carrying the DPP primitive trail.
    pub fn data_with_primitives(
        dataset: DataSet,
        kernels: Vec<KernelReport>,
        primitives: Vec<crate::dpp::PrimitiveReport>,
    ) -> Self {
        FilterOutput {
            dataset: Some(dataset),
            images: Vec::new(),
            kernels,
            primitives,
        }
    }

    pub fn rendered(images: Vec<Image>, kernels: Vec<KernelReport>) -> Self {
        FilterOutput {
            dataset: None,
            images,
            kernels,
            primitives: Vec::new(),
        }
    }

    /// Total work across all kernels.
    pub fn total_work(&self) -> WorkCounters {
        let mut w = WorkCounters::new();
        for k in &self.kernels {
            w += k.work;
        }
        w
    }
}

/// A visualization filter: consumes a dataset, produces geometry and/or
/// images plus its work reports.
pub trait Filter {
    /// Display name ("Contour", "Volume Rendering", ...).
    fn name(&self) -> &'static str;

    /// Execute against `input`.
    fn execute(&self, input: &DataSet) -> FilterOutput;
}

/// The paper's eight algorithms, as an enumerable id used by the study
/// drivers and the reproduction harness.
///
/// Everything descriptive about an algorithm — display name, CLI
/// aliases, kernel taxonomy, cell-centeredness — lives in one registry
/// row (see [`crate::registry`]); the methods and tables here are views
/// of it. The paper parameterization lives in
/// [`default_spec`](Algorithm::default_spec) (see [`crate::spec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    Contour,
    Threshold,
    SphericalClip,
    Isovolume,
    Slice,
    ParticleAdvection,
    RayTracing,
    VolumeRendering,
}

impl Algorithm {
    /// All eight, in the paper's presentation order (Fig. 1); derived
    /// from the registry row order.
    pub const ALL: [Algorithm; 8] = crate::registry::ALL;

    /// The cell-centered algorithms compared by the paper's elements/sec
    /// rate (Fig. 3): those that iterate over every input cell. Derived
    /// from the registry flags, sorted by display name.
    pub const CELL_CENTERED: [Algorithm; 5] = crate::registry::CELL_CENTERED;

    /// Display name, from the registry ("Contour", "Spherical Clip", ...).
    pub fn name(self) -> &'static str {
        crate::registry::entry(self).name
    }

    /// Kernel taxonomy, from the registry: the [`KernelClass`]es this
    /// algorithm's filter emits, in execution order.
    pub fn kernel_classes(self) -> &'static [KernelClass] {
        crate::registry::entry(self).classes
    }

    /// Whether the algorithm iterates over every input cell (registry
    /// flag backing [`Algorithm::CELL_CENTERED`]).
    pub fn is_cell_centered(self) -> bool {
        crate::registry::entry(self).cell_centered
    }

    /// Parse a CLI-style name (case/space/underscore insensitive),
    /// against the registry alias tables.
    pub fn parse(s: &str) -> Option<Algorithm> {
        crate::registry::parse(s)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_eight_unique_algorithms() {
        let mut seen = std::collections::HashSet::new();
        for a in Algorithm::ALL {
            assert!(seen.insert(a));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn parse_round_trips_names() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.name()), Some(a), "{}", a.name());
        }
        assert_eq!(Algorithm::parse("volren"), Some(Algorithm::VolumeRendering));
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn cell_centered_is_subset_of_all() {
        for a in Algorithm::CELL_CENTERED {
            assert!(Algorithm::ALL.contains(&a));
        }
        assert!(!Algorithm::CELL_CENTERED.contains(&Algorithm::RayTracing));
        assert!(!Algorithm::CELL_CENTERED.contains(&Algorithm::VolumeRendering));
        assert!(!Algorithm::CELL_CENTERED.contains(&Algorithm::ParticleAdvection));
    }

    #[test]
    fn filter_output_total_work_sums_kernels() {
        let mut w1 = WorkCounters::new();
        w1.tally(10, 5, 2, 8, 8);
        let mut w2 = WorkCounters::new();
        w2.tally(20, 1, 0, 4, 0);
        let out = FilterOutput {
            dataset: None,
            images: vec![],
            kernels: vec![
                KernelReport::new("a", KernelClass::CellClassify, w1),
                KernelReport::new("b", KernelClass::Interpolate, w2),
            ],
            primitives: vec![],
        };
        let total = out.total_work();
        assert_eq!(total.items, 30);
        assert_eq!(total.instructions, 70);
    }
}
