//! Particle advection (§III-B6): advect massless particles through a
//! vector field with 4th-order Runge–Kutta.
//!
//! As in the paper, the seed count, step length and step count are held
//! constant regardless of the data set size, so particles may exit the
//! bounding box early and terminate — which is why the algorithm's work
//! (and hence its IPC, Fig. 6) is independent of the data set size.
//!
//! The paper's workload is the steady-state case — one frozen velocity
//! field, streamlines — and that path is preserved bit-for-bit. Beyond
//! it, the kernel generalizes along the four dimensions "A Guide to
//! Particle Advection Performance" (arXiv:2201.08440) identifies:
//!
//! * [`FlowMode`] — streamlines (field frozen at the start time) vs
//!   pathlines (particles advect through a time-varying
//!   [`FieldSeries`], sampling the linear temporal interpolation
//!   between bracketing snapshots).
//! * [`Seeding`] — dense random box (the paper's placement), a sparse
//!   deterministic lattice, or seeds placed along a feature (the
//!   fastest-flow candidate sites).
//! * [`StepControl`] — fixed step length vs step-doubling adaptive
//!   control with a per-step error tolerance.
//! * [`Termination`] — max-steps (the paper's bound), exit-domain, or
//!   max integrated time.
//!
//! The temporal sampling rule is exact at snapshots: when a query time
//! brackets to a single snapshot (single-snapshot series, or at/outside
//! the retained span) the sample *is* that snapshot's trilinear sample,
//! with no interpolation arithmetic — which is what makes a pathline on
//! a frozen series byte-identical to the steady streamline.

use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vizmesh::{
    Association, CellSet, CellShape, DataSet, Field, FieldSeries, UniformGrid, Vec3, WorkCounters,
};

/// Streamline (frozen field) vs pathline (time-varying field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlowMode {
    /// Sample the field at the trajectory's start time for every stage:
    /// the steady-state streamline of the paper.
    #[default]
    Streamline,
    /// Advance field time along with the particle: a pathline through
    /// the series' linear temporal interpolation.
    Pathline,
}

impl FlowMode {
    /// Stable lower-case name used in canonical spec strings and spans.
    pub fn wire_name(&self) -> &'static str {
        match self {
            FlowMode::Streamline => "streamline",
            FlowMode::Pathline => "pathline",
        }
    }
}

/// Where the seeds come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Seeding {
    /// The paper's placement: uniform random over the bounding box from
    /// the kernel's seeded RNG.
    #[default]
    DenseBox,
    /// A deterministic near-cubic lattice of cell-centered fractions —
    /// the sparse, evenly-spread strategy.
    SparseGrid,
    /// Rank a candidate lattice (4× oversampled) by flow speed at the
    /// start time and keep the fastest sites: seeds along the dominant
    /// feature of the field.
    AlongFeature,
}

impl Seeding {
    /// Stable lower-case name used in canonical spec strings and spans.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Seeding::DenseBox => "dense-box",
            Seeding::SparseGrid => "sparse-grid",
            Seeding::AlongFeature => "along-feature",
        }
    }
}

/// Fixed vs adaptive integration step length.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StepControl {
    /// Every step uses the configured length (the paper's control).
    #[default]
    Fixed,
    /// Step doubling: compare one full step against two half steps; if
    /// they disagree by more than `tol` halve and retry (at most 4
    /// times), if they agree far within `tol` grow the next step (up to
    /// 8× the configured length). The accepted position is the
    /// two-half-steps result.
    Adaptive {
        /// Per-step positional error tolerance, in domain length units.
        tol: f64,
    },
}

impl StepControl {
    /// Stable lower-case name used in spans (parameters are carried by
    /// the spec fingerprint, not the label).
    pub fn wire_name(&self) -> &'static str {
        match self {
            StepControl::Fixed => "fixed",
            StepControl::Adaptive { .. } => "adaptive",
        }
    }
}

/// When a trajectory stops.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Termination {
    /// Stop after the configured step count (the paper's bound);
    /// domain exit still terminates early.
    #[default]
    MaxSteps,
    /// Integrate until the particle leaves the domain, with a safety
    /// ceiling of 8× the configured step count so closed orbits (e.g.
    /// rigid rotation) cannot spin forever.
    ExitDomain,
    /// Stop once the integrated parameter time reaches `t_end` (the
    /// configured step count stays a hard ceiling).
    MaxTime {
        /// Integrated-time horizon, in field time units.
        t_end: f64,
    },
}

impl Termination {
    /// Stable lower-case name used in spans (parameters are carried by
    /// the spec fingerprint, not the label).
    pub fn wire_name(&self) -> &'static str {
        match self {
            Termination::MaxSteps => "max-steps",
            Termination::ExitDomain => "exit-domain",
            Termination::MaxTime { .. } => "max-time",
        }
    }
}

/// The full advection scenario: flow mode × seeding × step control ×
/// termination. The default scenario is exactly the paper's workload,
/// and the kernel's default-scenario path is bit-identical to the
/// pre-scenario implementation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowScenario {
    /// Streamline vs pathline.
    #[serde(default)]
    pub mode: FlowMode,
    /// Seed placement strategy.
    #[serde(default)]
    pub seeding: Seeding,
    /// Step-size control.
    #[serde(default)]
    pub step_control: StepControl,
    /// Termination criterion.
    #[serde(default)]
    pub termination: Termination,
}

impl FlowScenario {
    /// Whether this is the paper's default scenario (streamline,
    /// dense-box, fixed step, max-steps).
    pub fn is_default(&self) -> bool {
        *self == FlowScenario::default()
    }

    /// Compact `mode/seeding/step/termination` label for spans and
    /// reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.mode.wire_name(),
            self.seeding.wire_name(),
            self.step_control.wire_name(),
            self.termination.wire_name()
        )
    }
}

/// One resolved snapshot of the flow: a structured grid plus its
/// point-centered velocity array, tagged with the snapshot time.
struct Frame<'a> {
    time: f64,
    grid: &'a UniformGrid,
    vel: &'a [Vec3],
}

impl<'a> Frame<'a> {
    fn resolve(time: f64, ds: &'a DataSet, field: &str) -> Frame<'a> {
        let grid = ds
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("particle advection expects a structured dataset");
        let vel = ds
            .point_vectors(field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point vector field '{field}'"));
        Frame { time, grid, vel }
    }
}

/// The particle advection filter.
#[derive(Debug, Clone)]
pub struct ParticleAdvection {
    /// Point-centered vector field to advect through.
    pub field: String,
    pub num_particles: usize,
    pub num_steps: usize,
    /// Integration step length, in fractions of the grid diagonal.
    pub step_fraction: f64,
    /// Seed for deterministic particle placement.
    pub seed: u64,
    /// Flow mode, seeding, step control, termination. Defaults to the
    /// paper's scenario, which keeps the steady-state path bit-exact.
    pub scenario: FlowScenario,
}

impl ParticleAdvection {
    /// The paper-style configuration: 1000 seeds, 1000 steps, step length
    /// tied to the (fixed) physical domain, *not* to the grid resolution.
    pub fn paper_default(field: impl Into<String>) -> Self {
        ParticleAdvection {
            field: field.into(),
            num_particles: 1000,
            num_steps: 1000,
            step_fraction: 5e-4,
            seed: 0x5eed_1234,
            scenario: FlowScenario::default(),
        }
    }

    pub fn new(
        field: impl Into<String>,
        num_particles: usize,
        num_steps: usize,
        step_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(num_particles > 0 && num_steps > 0);
        assert!(step_fraction > 0.0);
        ParticleAdvection {
            field: field.into(),
            num_particles,
            num_steps,
            step_fraction,
            seed,
            scenario: FlowScenario::default(),
        }
    }

    /// The same kernel under a non-default scenario.
    pub fn with_scenario(mut self, scenario: FlowScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// One RK4 step; `None` if any stage samples outside the grid.
    fn rk4(grid: &UniformGrid, vel: &[Vec3], p: Vec3, h: f64) -> Option<Vec3> {
        let k1 = grid.sample_vector(vel, p)?;
        let k2 = grid.sample_vector(vel, p + k1 * (h * 0.5))?;
        let k3 = grid.sample_vector(vel, p + k2 * (h * 0.5))?;
        let k4 = grid.sample_vector(vel, p + k3 * h)?;
        Some(p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0))
    }

    /// Locate `t` among the frame times: bracketing indices and the
    /// interpolation weight. `i == j` means "sample that frame
    /// directly, no interpolation" — the single-snapshot and boundary
    /// cases, mirroring [`FieldSeries::bracket`].
    fn bracket_frames(frames: &[Frame<'_>], t: f64) -> (usize, usize, f64) {
        let n = frames.len();
        if n == 1 || t <= frames[0].time {
            return (0, 0, 0.0);
        }
        if t >= frames[n - 1].time {
            return (n - 1, n - 1, 0.0);
        }
        let mut i = 0;
        while i + 1 < n && frames[i + 1].time <= t {
            i += 1;
        }
        let (t0, t1) = (frames[i].time, frames[i + 1].time);
        if t <= t0 || t1 <= t0 {
            return (i, i, 0.0);
        }
        (i, i + 1, (t - t0) / (t1 - t0))
    }

    /// Sample the time-varying field at `(p, t)`: the bracketing
    /// frames' trilinear samples, lerped — or, when `t` resolves to a
    /// single frame, that frame's sample with no lerp arithmetic (the
    /// bit-exactness guarantee for frozen series).
    fn sample_frames(frames: &[Frame<'_>], p: Vec3, t: f64) -> Option<Vec3> {
        let (i, j, alpha) = Self::bracket_frames(frames, t);
        let a = frames[i].grid.sample_vector(frames[i].vel, p)?;
        if i == j {
            return Some(a);
        }
        let b = frames[j].grid.sample_vector(frames[j].vel, p)?;
        Some(a.lerp(b, alpha))
    }

    /// One RK4 step against the frame series. `advance_time` is the
    /// pathline/streamline switch: streamlines hold every stage at `t`.
    /// Counts the 4 field evaluations on success.
    fn rk4_series(
        frames: &[Frame<'_>],
        p: Vec3,
        t: f64,
        h: f64,
        advance_time: bool,
        evals: &mut u64,
    ) -> Option<Vec3> {
        let (tm, te) = if advance_time {
            (t + h * 0.5, t + h)
        } else {
            (t, t)
        };
        let k1 = Self::sample_frames(frames, p, t)?;
        let k2 = Self::sample_frames(frames, p + k1 * (h * 0.5), tm)?;
        let k3 = Self::sample_frames(frames, p + k2 * (h * 0.5), tm)?;
        let k4 = Self::sample_frames(frames, p + k3 * h, te)?;
        *evals += 4;
        Some(p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0))
    }

    /// One step-doubling adaptive step: accept the two-half-steps
    /// result, halving on disagreement (≤ 4 retries) and growing the
    /// next step (≤ 8× the configured length) on strong agreement.
    /// Returns `(position, used_h, next_h)`; `None` when either trial
    /// leaves the domain.
    fn adaptive_step(
        frames: &[Frame<'_>],
        p: Vec3,
        t: f64,
        h_try: f64,
        h0: f64,
        tol: f64,
        advance_time: bool,
        evals: &mut u64,
    ) -> Option<(Vec3, f64, f64)> {
        let mut h = h_try;
        let mut attempt = 0;
        loop {
            let half = h * 0.5;
            let full = Self::rk4_series(frames, p, t, h, advance_time, evals)?;
            let mid = Self::rk4_series(frames, p, t, half, advance_time, evals)?;
            let tm = if advance_time { t + half } else { t };
            let fine = Self::rk4_series(frames, mid, tm, half, advance_time, evals)?;
            let err = (full - fine).length();
            if err > tol && attempt < 4 {
                h = half;
                attempt += 1;
                continue;
            }
            let next = if err < tol / 32.0 {
                (h * 2.0).min(h0 * 8.0)
            } else {
                h
            };
            return Some((fine, h, next));
        }
    }

    /// Index `i` of an `m`-per-axis cell-centered lattice over `b`.
    fn lattice_point(b: &vizmesh::Aabb, i: usize, m: usize) -> Vec3 {
        let f = |k: usize| (k as f64 + 0.5) / m as f64;
        let (fx, fy, fz) = (f(i % m), f((i / m) % m), f(i / (m * m)));
        Vec3::new(
            b.min.x + (b.max.x - b.min.x) * fx,
            b.min.y + (b.max.y - b.min.y) * fy,
            b.min.z + (b.max.z - b.min.z) * fz,
        )
    }

    /// Smallest `m` with `m³ ≥ n`.
    fn cbrt_ceil(n: usize) -> usize {
        let mut m = 1usize;
        while m * m * m < n {
            m += 1;
        }
        m
    }

    /// Seed positions under the scenario's strategy. `DenseBox` is the
    /// paper's RNG placement, byte-for-byte.
    fn place_seeds(&self, frames: &[Frame<'_>]) -> Vec<Vec3> {
        let b = frames[0].grid.bounds();
        match self.scenario.seeding {
            Seeding::DenseBox => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                (0..self.num_particles)
                    .map(|_| {
                        Vec3::new(
                            rng.random_range(b.min.x..b.max.x),
                            rng.random_range(b.min.y..b.max.y),
                            rng.random_range(b.min.z..b.max.z),
                        )
                    })
                    .collect()
            }
            Seeding::SparseGrid => {
                let m = Self::cbrt_ceil(self.num_particles);
                (0..self.num_particles)
                    .map(|i| Self::lattice_point(&b, i, m))
                    .collect()
            }
            Seeding::AlongFeature => {
                let t0 = frames[0].time;
                let m = Self::cbrt_ceil(self.num_particles * 4);
                let candidates: Vec<Vec3> = (0..m * m * m)
                    .map(|i| Self::lattice_point(&b, i, m))
                    .collect();
                let mut ranked: Vec<(f64, usize)> = candidates
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let speed = Self::sample_frames(frames, p, t0)
                            .map(|u| u.length())
                            .unwrap_or(0.0);
                        (speed, i)
                    })
                    .collect();
                ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                ranked.truncate(self.num_particles);
                ranked.into_iter().map(|(_, i)| candidates[i]).collect()
            }
        }
    }

    /// Advect against a time-varying series of snapshots under the
    /// configured scenario. A frozen single-snapshot series under the
    /// `Pathline` scenario reproduces [`Filter::execute`]'s streamline
    /// output byte-for-byte (differential-tested and checked by the
    /// conformance suite's metamorphic law).
    pub fn execute_series(&self, series: &FieldSeries) -> FilterOutput {
        assert!(!series.is_empty(), "advection needs at least one snapshot");
        let frames: Vec<Frame<'_>> = series
            .snapshots()
            .map(|(t, ds)| Frame::resolve(t, ds, &self.field))
            .collect();
        self.run(&frames)
    }

    /// The generalized kernel over resolved frames. All scenario
    /// dimensions are dispatched here; the default-scenario single-
    /// frame case performs exactly the steady kernel's arithmetic.
    fn run(&self, frames: &[Frame<'_>]) -> FilterOutput {
        let grid = frames[0].grid;
        let b = grid.bounds();
        let h0 = b.diagonal() * self.step_fraction;
        let t_start = frames[0].time;
        let advance_time = self.scenario.mode == FlowMode::Pathline;
        let max_iters = match self.scenario.termination {
            Termination::MaxSteps | Termination::MaxTime { .. } => self.num_steps,
            // Safety ceiling: closed orbits never exit the domain.
            Termination::ExitDomain => self.num_steps * 8,
        };

        let seeds = self.place_seeds(frames);

        // Advect each particle (parallel over particles). A trace is
        // the path, the per-point parameter times, and the field-eval
        // count (4 per accepted or rejected RK4 step).
        let traces: Vec<(Vec<Vec3>, Vec<f64>, u64)> = seeds
            .par_iter()
            .map(|&seed| {
                let mut path = Vec::with_capacity(self.num_steps + 1);
                let mut times = Vec::with_capacity(self.num_steps + 1);
                path.push(seed);
                times.push(t_start);
                let mut p = seed;
                let mut t = t_start;
                let mut elapsed = 0.0f64;
                let mut h = h0;
                let mut evals = 0u64;
                for _ in 0..max_iters {
                    let step = match self.scenario.step_control {
                        StepControl::Fixed => {
                            Self::rk4_series(frames, p, t, h0, advance_time, &mut evals)
                                .map(|q| (q, h0))
                        }
                        StepControl::Adaptive { tol } => {
                            Self::adaptive_step(frames, p, t, h, h0, tol, advance_time, &mut evals)
                                .map(|(q, used, next)| {
                                    h = next;
                                    (q, used)
                                })
                        }
                    };
                    match step {
                        Some((next, used)) => {
                            p = next;
                            elapsed += used;
                            if advance_time {
                                t += used;
                            }
                            path.push(p);
                            times.push(t);
                            if let Termination::MaxTime { t_end } = self.scenario.termination {
                                if elapsed >= t_end {
                                    break;
                                }
                            }
                        }
                        // Particle displaced outside the bounding box:
                        // terminate (paper §VI-C).
                        None => break,
                    }
                }
                (path, times, evals)
            })
            .collect();

        let mut work = WorkCounters::new();
        let total_evals: u64 = traces.iter().map(|(_, _, e)| e).sum();
        // Each RK4 step: 4 trilinear vector samples (8 point gathers of
        // 24 B each, ~90 flops) plus the combination arithmetic. Under
        // fixed stepping evals/4 is exactly the accepted step count;
        // under adaptive control it also charges rejected trials.
        work.tally(total_evals / 4, 4 * 110 + 40, 4 * 90 + 24, 4 * 8 * 24, 24);
        work.tally(self.num_particles as u64, 60, 10, 24, 48);
        let resident: usize = frames.iter().map(|f| f.vel.len() * 24).sum();
        work.working_set_bytes = resident.min(1 << 22) as u64;

        // Build polylines. Output sizes are known exactly from the
        // traces, so every buffer is allocated once up front; the
        // connectivity scratch is reused across polylines.
        let total_pts: usize = traces.iter().map(|(p, _, _)| p.len()).sum();
        let mut points: Vec<Vec3> = Vec::with_capacity(total_pts);
        let mut cells = CellSet::with_capacity(traces.len(), total_pts);
        let mut speed: Vec<f64> = Vec::with_capacity(total_pts);
        let mut conn: Vec<u32> = Vec::with_capacity(self.num_steps + 1);
        for (path, times, _) in &traces {
            if path.len() < 2 {
                continue;
            }
            let base = points.len() as u32;
            conn.clear();
            conn.extend((0..path.len()).map(|i| base + i as u32));
            for (k, &p) in path.iter().enumerate() {
                let v = Self::sample_frames(frames, p, times[k])
                    .map(|u| u.length())
                    .unwrap_or(0.0);
                points.push(p);
                speed.push(v);
            }
            cells.push(CellShape::PolyLine, &conn);
        }

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            "speed",
            Association::Points,
            speed[..n].to_vec(),
        ));
        FilterOutput::data(
            ds,
            vec![KernelReport::new(
                "rk4-advect",
                KernelClass::Rk4Advect,
                work,
            )],
        )
    }

    /// The steady-state paper kernel, preserved verbatim: the default
    /// scenario routes here so the pre-scenario arithmetic, RNG stream,
    /// and work tallies stay bit-identical.
    fn execute_steady(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("particle advection expects a structured dataset");
        let vel = input
            .point_vectors(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point vector field '{}'", self.field));

        let b = grid.bounds();
        let h = b.diagonal() * self.step_fraction;

        // Deterministic seeds.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let seeds: Vec<Vec3> = (0..self.num_particles)
            .map(|_| {
                Vec3::new(
                    rng.random_range(b.min.x..b.max.x),
                    rng.random_range(b.min.y..b.max.y),
                    rng.random_range(b.min.z..b.max.z),
                )
            })
            .collect();

        // Advect each particle (parallel over particles).
        let traces: Vec<(Vec<Vec3>, u64)> = seeds
            .par_iter()
            .map(|&seed| {
                let mut path = Vec::with_capacity(self.num_steps + 1);
                path.push(seed);
                let mut p = seed;
                let mut steps = 0u64;
                for _ in 0..self.num_steps {
                    match Self::rk4(grid, vel, p, h) {
                        Some(next) => {
                            p = next;
                            path.push(p);
                            steps += 1;
                        }
                        // Particle displaced outside the bounding box:
                        // terminate (paper §VI-C).
                        None => break,
                    }
                }
                (path, steps)
            })
            .collect();

        let mut work = WorkCounters::new();
        let total_steps: u64 = traces.iter().map(|(_, s)| s).sum();
        // Each RK4 step: 4 trilinear vector samples (8 point gathers of
        // 24 B each, ~90 flops) plus the combination arithmetic.
        work.tally(total_steps, 4 * 110 + 40, 4 * 90 + 24, 4 * 8 * 24, 24);
        work.tally(self.num_particles as u64, 60, 10, 24, 48);
        work.working_set_bytes = (vel.len() * 24).min(1 << 22) as u64;

        // Build streamline polylines. Output sizes are known exactly from
        // the traces, so every buffer is allocated once up front; the
        // connectivity scratch is reused across polylines.
        let total_pts: usize = traces.iter().map(|(p, _)| p.len()).sum();
        let mut points: Vec<Vec3> = Vec::with_capacity(total_pts);
        let mut cells = CellSet::with_capacity(traces.len(), total_pts);
        let mut speed: Vec<f64> = Vec::with_capacity(total_pts);
        let mut conn: Vec<u32> = Vec::with_capacity(self.num_steps + 1);
        for (path, _) in &traces {
            if path.len() < 2 {
                continue;
            }
            let base = points.len() as u32;
            conn.clear();
            conn.extend((0..path.len()).map(|i| base + i as u32));
            for &p in path {
                let v = grid
                    .sample_vector(vel, p)
                    .map(|u| u.length())
                    .unwrap_or(0.0);
                points.push(p);
                speed.push(v);
            }
            cells.push(CellShape::PolyLine, &conn);
        }

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            "speed",
            Association::Points,
            speed[..n].to_vec(),
        ));
        FilterOutput::data(
            ds,
            vec![KernelReport::new(
                "rk4-advect",
                KernelClass::Rk4Advect,
                work,
            )],
        )
    }
}

impl Filter for ParticleAdvection {
    fn name(&self) -> &'static str {
        "Particle Advection"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        if self.scenario.is_default() {
            return self.execute_steady(input);
        }
        let frame = Frame::resolve(0.0, input, &self.field);
        self.run(std::slice::from_ref(&frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Uniform +x flow on a unit grid.
    fn uniform_flow(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vel = vec![Vec3::new(1.0, 0.0, 0.0); grid.num_points()];
        DataSet::uniform(grid).with_field(Field::vector("velocity", Association::Points, vel))
    }

    /// Uniform +x flow scaled by `s`.
    fn scaled_flow(n: usize, s: f64) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vel = vec![Vec3::new(s, 0.0, 0.0); grid.num_points()];
        DataSet::uniform(grid).with_field(Field::vector("velocity", Association::Points, vel))
    }

    /// Rigid rotation around the z axis through the center.
    fn rotating_flow(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let c = grid.bounds().center();
        let vel: Vec<Vec3> = (0..grid.num_points())
            .map(|p| {
                let q = grid.point_coord_id(p) - c;
                Vec3::new(-q.y, q.x, 0.0)
            })
            .collect();
        DataSet::uniform(grid).with_field(Field::vector("velocity", Association::Points, vel))
    }

    fn advector(particles: usize, steps: usize) -> ParticleAdvection {
        ParticleAdvection::new("velocity", particles, steps, 1e-3, 42)
    }

    #[test]
    fn streamlines_follow_uniform_flow() {
        let ds = uniform_flow(4);
        let out = advector(10, 50).execute(&ds);
        let result = out.dataset.unwrap();
        let (points, cells) = result.as_explicit().unwrap();
        assert!(cells.num_cells() > 0);
        for (shape, conn) in cells.iter() {
            assert_eq!(shape, CellShape::PolyLine);
            // Monotone x, constant y/z.
            for w in conn.windows(2) {
                let a = points[w[0] as usize];
                let b = points[w[1] as usize];
                assert!(b.x > a.x);
                assert!((b.y - a.y).abs() < 1e-12);
                assert!((b.z - a.z).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn particles_terminate_at_domain_exit() {
        let ds = uniform_flow(4);
        // Huge steps: every particle exits quickly.
        let adv = ParticleAdvection::new("velocity", 20, 1000, 0.05, 7);
        let out = adv.execute(&ds);
        // Total steps far fewer than 20 * 1000.
        let steps = out.kernels[0].work.items;
        assert!(steps < 20 * 1000, "steps = {steps}");
        // And all endpoints are inside (termination happens before exit).
        let result = out.dataset.unwrap();
        let b = ds.bounds();
        let (points, _) = result.as_explicit().unwrap();
        for p in points {
            assert!(b.contains(*p));
        }
    }

    #[test]
    fn rk4_conserves_radius_in_rotation() {
        // RK4 on rigid rotation keeps particles near their initial radius.
        let ds = rotating_flow(8);
        let grid = ds.as_uniform().unwrap();
        let vel = ds.point_vectors("velocity").unwrap();
        let c = ds.bounds().center();
        let p0 = Vec3::new(0.7, 0.5, 0.5);
        let r0 = (p0 - c).length();
        let mut p = p0;
        for _ in 0..2000 {
            match ParticleAdvection::rk4(grid, vel, p, 1e-3) {
                Some(next) => p = next,
                None => break,
            }
        }
        let r1 = (p - c).length();
        assert!((r1 - r0).abs() < 1e-4, "radius drifted {r0} -> {r1}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let ds = rotating_flow(4);
        let a = advector(5, 20).execute(&ds);
        let b = advector(5, 20).execute(&ds);
        assert_eq!(a.dataset.unwrap(), b.dataset.unwrap());
    }

    #[test]
    fn work_independent_of_grid_size_when_no_exit() {
        // Rotating flow keeps particles inside: same seeds/steps on 4³
        // and 8³ grids take the same number of RK4 steps (Fig. 6).
        let small = advector(8, 30).execute(&rotating_flow(4));
        let large = advector(8, 30).execute(&rotating_flow(8));
        assert_eq!(small.kernels[0].work.items, large.kernels[0].work.items);
    }

    #[test]
    fn speed_field_matches_flow() {
        let ds = uniform_flow(4);
        let out = advector(5, 10).execute(&ds);
        let result = out.dataset.unwrap();
        for &s in result.point_scalars("speed").unwrap() {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pathline_on_frozen_series_is_byte_identical_to_streamline() {
        // The tentpole's bit-exactness law: a pathline through a
        // single-snapshot series takes the single-frame sampling
        // shortcut at every stage, so its polylines, speed field, AND
        // work counters match the steady kernel exactly.
        for ds in [rotating_flow(6), uniform_flow(4)] {
            let adv = advector(12, 40);
            let steady = adv.execute(&ds);
            let series = FieldSeries::frozen(Arc::new(ds));
            let pathline = adv
                .clone()
                .with_scenario(FlowScenario {
                    mode: FlowMode::Pathline,
                    ..FlowScenario::default()
                })
                .execute_series(&series);
            assert_eq!(steady.dataset, pathline.dataset, "geometry must match");
            assert_eq!(
                format!("{:?}", steady.kernels),
                format!("{:?}", pathline.kernels),
                "work accounting must match"
            );
        }
    }

    #[test]
    fn pathline_tracks_the_time_varying_field() {
        // Flow accelerates from 1 to 3 over t in [0, 1]: a pathline
        // must outrun the t=0 streamline, and the interpolated speed at
        // mid-times must lie strictly between the snapshots.
        let mut series = FieldSeries::with_capacity(2);
        series.record(0.0, Arc::new(scaled_flow(4, 1.0)));
        // push() requires strictly increasing times, so the faster
        // snapshot lands at t = 1.
        series.record(1.0, Arc::new(scaled_flow(4, 3.0)));
        // 100 fixed steps cover ~0.17 time units: no particle reaches
        // the domain boundary, so reach differences are pure physics.
        let adv =
            ParticleAdvection::new("velocity", 6, 100, 1e-3, 42).with_scenario(FlowScenario {
                seeding: Seeding::SparseGrid,
                ..FlowScenario::default()
            });
        let steady = adv.execute(&scaled_flow(4, 1.0));
        let pathline = adv
            .clone()
            .with_scenario(FlowScenario {
                mode: FlowMode::Pathline,
                seeding: Seeding::SparseGrid,
                ..FlowScenario::default()
            })
            .execute_series(&series);
        let reach = |out: FilterOutput| {
            let ds = out.dataset.unwrap();
            let mut dx = 0.0f64;
            {
                let (points, cells) = ds.as_explicit().unwrap();
                for (_, conn) in cells.iter() {
                    let a = points[conn[0] as usize];
                    let b = points[conn[conn.len() - 1] as usize];
                    dx = dx.max(b.x - a.x);
                }
            }
            dx
        };
        let (steady_dx, path_dx) = (reach(steady), reach(pathline));
        assert!(
            path_dx > steady_dx * 1.05,
            "pathline must outrun the frozen field: {steady_dx} vs {path_dx}"
        );
    }

    #[test]
    fn sparse_and_feature_seeding_are_deterministic_and_in_bounds() {
        let ds = rotating_flow(6);
        let b = ds.bounds();
        for seeding in [Seeding::SparseGrid, Seeding::AlongFeature] {
            let adv = advector(9, 10).with_scenario(FlowScenario {
                seeding,
                ..FlowScenario::default()
            });
            let a = adv.execute(&ds);
            let again = adv.execute(&ds);
            assert_eq!(a.dataset, again.dataset, "{seeding:?} must replay");
            let ds_out = a.dataset.unwrap();
            let (points, _) = ds_out.as_explicit().unwrap();
            for p in points {
                assert!(b.contains(*p), "{seeding:?} seed path left the domain");
            }
        }
    }

    #[test]
    fn along_feature_seeds_start_faster_than_sparse() {
        // Rigid rotation is fastest at the rim: feature seeding must
        // pick sites with higher mean initial speed than the lattice.
        let ds = rotating_flow(8);
        let mean_initial_speed = |seeding: Seeding| {
            let out = advector(8, 2)
                .with_scenario(FlowScenario {
                    seeding,
                    ..FlowScenario::default()
                })
                .execute(&ds);
            let result = out.dataset.unwrap();
            let mut total = 0.0;
            let mut n = 0usize;
            {
                let speeds = result.point_scalars("speed").unwrap();
                let (_, cells) = result.as_explicit().unwrap();
                for (_, conn) in cells.iter() {
                    total += speeds[conn[0] as usize];
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        assert!(
            mean_initial_speed(Seeding::AlongFeature) > mean_initial_speed(Seeding::SparseGrid),
            "feature seeds should sit in the fast band"
        );
    }

    #[test]
    fn adaptive_control_conserves_radius_with_fewer_accepted_steps() {
        let ds = rotating_flow(8);
        let c = ds.bounds().center();
        let adv =
            ParticleAdvection::new("velocity", 4, 400, 2e-3, 11).with_scenario(FlowScenario {
                step_control: StepControl::Adaptive { tol: 1e-5 },
                seeding: Seeding::SparseGrid,
                ..FlowScenario::default()
            });
        let out = adv.execute(&ds);
        let result = out.dataset.unwrap();
        let (points, cells) = result.as_explicit().unwrap();
        for (_, conn) in cells.iter() {
            let r0 = (points[conn[0] as usize] - c).length();
            let r1 = (points[conn[conn.len() - 1] as usize] - c).length();
            assert!((r1 - r0).abs() < 1e-3, "radius drifted {r0} -> {r1}");
        }
        // Adaptive control charges trial evaluations too: eval-derived
        // items must differ from the fixed-step run's.
        let fixed = ParticleAdvection::new("velocity", 4, 400, 2e-3, 11)
            .with_scenario(FlowScenario {
                seeding: Seeding::SparseGrid,
                ..FlowScenario::default()
            })
            .execute(&ds);
        assert_ne!(out.kernels[0].work.items, fixed.kernels[0].work.items);
    }

    #[test]
    fn exit_domain_runs_past_the_step_bound_until_exit() {
        let ds = uniform_flow(4);
        // Step length exits the unit box in ~1000 fixed steps of
        // sqrt(3)*5e-4; MaxSteps at 200 would stop early, ExitDomain
        // keeps integrating (ceiling 8 × 200 = 1600).
        let capped = ParticleAdvection::new("velocity", 6, 200, 5e-4, 3)
            .with_scenario(FlowScenario {
                seeding: Seeding::SparseGrid,
                ..FlowScenario::default()
            })
            .execute(&ds);
        let exits = ParticleAdvection::new("velocity", 6, 200, 5e-4, 3)
            .with_scenario(FlowScenario {
                seeding: Seeding::SparseGrid,
                termination: Termination::ExitDomain,
                ..FlowScenario::default()
            })
            .execute(&ds);
        assert!(
            exits.kernels[0].work.items > capped.kernels[0].work.items,
            "exit-domain must integrate past the step bound"
        );
    }

    #[test]
    fn max_time_stops_at_the_horizon() {
        let ds = uniform_flow(4);
        let h = ds.bounds().diagonal() * 1e-3;
        // Half-step margin: the 25th step crosses the horizon whatever
        // way the accumulated-time rounding falls.
        let t_end = h * 24.5;
        let out = advector(4, 500)
            .with_scenario(FlowScenario {
                seeding: Seeding::SparseGrid,
                termination: Termination::MaxTime { t_end },
                ..FlowScenario::default()
            })
            .execute(&ds);
        // 25 full steps reach the horizon; +1 for the seed point.
        let result = out.dataset.unwrap();
        let (_, cells) = result.as_explicit().unwrap();
        for (_, conn) in cells.iter() {
            assert_eq!(conn.len(), 26, "fixed steps to the time horizon");
        }
    }

    #[test]
    fn scenario_label_and_default_detection() {
        assert!(FlowScenario::default().is_default());
        let s = FlowScenario {
            mode: FlowMode::Pathline,
            seeding: Seeding::AlongFeature,
            step_control: StepControl::Adaptive { tol: 1e-6 },
            termination: Termination::MaxTime { t_end: 0.5 },
        };
        assert!(!s.is_default());
        assert_eq!(s.label(), "pathline/along-feature/adaptive/max-time");
        assert_eq!(
            FlowScenario::default().label(),
            "streamline/dense-box/fixed/max-steps"
        );
    }
}
