//! Particle advection (§III-B6): advect massless particles through a
//! steady-state vector field with 4th-order Runge–Kutta, producing
//! streamlines.
//!
//! As in the paper, the seed count, step length and step count are held
//! constant regardless of the data set size, so particles may exit the
//! bounding box early and terminate — which is why the algorithm's work
//! (and hence its IPC, Fig. 6) is independent of the data set size.

use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, UniformGrid, Vec3, WorkCounters};

/// The particle advection filter.
#[derive(Debug, Clone)]
pub struct ParticleAdvection {
    /// Point-centered vector field to advect through.
    pub field: String,
    pub num_particles: usize,
    pub num_steps: usize,
    /// Integration step length, in fractions of the grid diagonal.
    pub step_fraction: f64,
    /// Seed for deterministic particle placement.
    pub seed: u64,
}

impl ParticleAdvection {
    /// The paper-style configuration: 1000 seeds, 1000 steps, step length
    /// tied to the (fixed) physical domain, *not* to the grid resolution.
    pub fn paper_default(field: impl Into<String>) -> Self {
        ParticleAdvection {
            field: field.into(),
            num_particles: 1000,
            num_steps: 1000,
            step_fraction: 5e-4,
            seed: 0x5eed_1234,
        }
    }

    pub fn new(
        field: impl Into<String>,
        num_particles: usize,
        num_steps: usize,
        step_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(num_particles > 0 && num_steps > 0);
        assert!(step_fraction > 0.0);
        ParticleAdvection {
            field: field.into(),
            num_particles,
            num_steps,
            step_fraction,
            seed,
        }
    }

    /// One RK4 step; `None` if any stage samples outside the grid.
    fn rk4(grid: &UniformGrid, vel: &[Vec3], p: Vec3, h: f64) -> Option<Vec3> {
        let k1 = grid.sample_vector(vel, p)?;
        let k2 = grid.sample_vector(vel, p + k1 * (h * 0.5))?;
        let k3 = grid.sample_vector(vel, p + k2 * (h * 0.5))?;
        let k4 = grid.sample_vector(vel, p + k3 * h)?;
        Some(p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0))
    }
}

impl Filter for ParticleAdvection {
    fn name(&self) -> &'static str {
        "Particle Advection"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("particle advection expects a structured dataset");
        let vel = input
            .point_vectors(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point vector field '{}'", self.field));

        let b = grid.bounds();
        let h = b.diagonal() * self.step_fraction;

        // Deterministic seeds.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let seeds: Vec<Vec3> = (0..self.num_particles)
            .map(|_| {
                Vec3::new(
                    rng.random_range(b.min.x..b.max.x),
                    rng.random_range(b.min.y..b.max.y),
                    rng.random_range(b.min.z..b.max.z),
                )
            })
            .collect();

        // Advect each particle (parallel over particles).
        let traces: Vec<(Vec<Vec3>, u64)> = seeds
            .par_iter()
            .map(|&seed| {
                let mut path = Vec::with_capacity(self.num_steps + 1);
                path.push(seed);
                let mut p = seed;
                let mut steps = 0u64;
                for _ in 0..self.num_steps {
                    match Self::rk4(grid, vel, p, h) {
                        Some(next) => {
                            p = next;
                            path.push(p);
                            steps += 1;
                        }
                        // Particle displaced outside the bounding box:
                        // terminate (paper §VI-C).
                        None => break,
                    }
                }
                (path, steps)
            })
            .collect();

        let mut work = WorkCounters::new();
        let total_steps: u64 = traces.iter().map(|(_, s)| s).sum();
        // Each RK4 step: 4 trilinear vector samples (8 point gathers of
        // 24 B each, ~90 flops) plus the combination arithmetic.
        work.tally(total_steps, 4 * 110 + 40, 4 * 90 + 24, 4 * 8 * 24, 24);
        work.tally(self.num_particles as u64, 60, 10, 24, 48);
        work.working_set_bytes = (vel.len() * 24).min(1 << 22) as u64;

        // Build streamline polylines. Output sizes are known exactly from
        // the traces, so every buffer is allocated once up front; the
        // connectivity scratch is reused across polylines.
        let total_pts: usize = traces.iter().map(|(p, _)| p.len()).sum();
        let mut points: Vec<Vec3> = Vec::with_capacity(total_pts);
        let mut cells = CellSet::with_capacity(traces.len(), total_pts);
        let mut speed: Vec<f64> = Vec::with_capacity(total_pts);
        let mut conn: Vec<u32> = Vec::with_capacity(self.num_steps + 1);
        for (path, _) in &traces {
            if path.len() < 2 {
                continue;
            }
            let base = points.len() as u32;
            conn.clear();
            conn.extend((0..path.len()).map(|i| base + i as u32));
            for &p in path {
                let v = grid
                    .sample_vector(vel, p)
                    .map(|u| u.length())
                    .unwrap_or(0.0);
                points.push(p);
                speed.push(v);
            }
            cells.push(CellShape::PolyLine, &conn);
        }

        let mut ds = DataSet::explicit(points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            "speed",
            Association::Points,
            speed[..n].to_vec(),
        ));
        FilterOutput::data(
            ds,
            vec![KernelReport::new(
                "rk4-advect",
                KernelClass::Rk4Advect,
                work,
            )],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform +x flow on a unit grid.
    fn uniform_flow(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vel = vec![Vec3::new(1.0, 0.0, 0.0); grid.num_points()];
        DataSet::uniform(grid).with_field(Field::vector("velocity", Association::Points, vel))
    }

    /// Rigid rotation around the z axis through the center.
    fn rotating_flow(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let c = grid.bounds().center();
        let vel: Vec<Vec3> = (0..grid.num_points())
            .map(|p| {
                let q = grid.point_coord_id(p) - c;
                Vec3::new(-q.y, q.x, 0.0)
            })
            .collect();
        DataSet::uniform(grid).with_field(Field::vector("velocity", Association::Points, vel))
    }

    fn advector(particles: usize, steps: usize) -> ParticleAdvection {
        ParticleAdvection::new("velocity", particles, steps, 1e-3, 42)
    }

    #[test]
    fn streamlines_follow_uniform_flow() {
        let ds = uniform_flow(4);
        let out = advector(10, 50).execute(&ds);
        let result = out.dataset.unwrap();
        let (points, cells) = result.as_explicit().unwrap();
        assert!(cells.num_cells() > 0);
        for (shape, conn) in cells.iter() {
            assert_eq!(shape, CellShape::PolyLine);
            // Monotone x, constant y/z.
            for w in conn.windows(2) {
                let a = points[w[0] as usize];
                let b = points[w[1] as usize];
                assert!(b.x > a.x);
                assert!((b.y - a.y).abs() < 1e-12);
                assert!((b.z - a.z).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn particles_terminate_at_domain_exit() {
        let ds = uniform_flow(4);
        // Huge steps: every particle exits quickly.
        let adv = ParticleAdvection::new("velocity", 20, 1000, 0.05, 7);
        let out = adv.execute(&ds);
        // Total steps far fewer than 20 * 1000.
        let steps = out.kernels[0].work.items;
        assert!(steps < 20 * 1000, "steps = {steps}");
        // And all endpoints are inside (termination happens before exit).
        let result = out.dataset.unwrap();
        let b = ds.bounds();
        let (points, _) = result.as_explicit().unwrap();
        for p in points {
            assert!(b.contains(*p));
        }
    }

    #[test]
    fn rk4_conserves_radius_in_rotation() {
        // RK4 on rigid rotation keeps particles near their initial radius.
        let ds = rotating_flow(8);
        let grid = ds.as_uniform().unwrap();
        let vel = ds.point_vectors("velocity").unwrap();
        let c = ds.bounds().center();
        let p0 = Vec3::new(0.7, 0.5, 0.5);
        let r0 = (p0 - c).length();
        let mut p = p0;
        for _ in 0..2000 {
            match ParticleAdvection::rk4(grid, vel, p, 1e-3) {
                Some(next) => p = next,
                None => break,
            }
        }
        let r1 = (p - c).length();
        assert!((r1 - r0).abs() < 1e-4, "radius drifted {r0} -> {r1}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let ds = rotating_flow(4);
        let a = advector(5, 20).execute(&ds);
        let b = advector(5, 20).execute(&ds);
        assert_eq!(a.dataset.unwrap(), b.dataset.unwrap());
    }

    #[test]
    fn work_independent_of_grid_size_when_no_exit() {
        // Rotating flow keeps particles inside: same seeds/steps on 4³
        // and 8³ grids take the same number of RK4 steps (Fig. 6).
        let small = advector(8, 30).execute(&rotating_flow(4));
        let large = advector(8, 30).execute(&rotating_flow(8));
        assert_eq!(small.kernels[0].work.items, large.kernels[0].work.items);
    }

    #[test]
    fn speed_field_matches_flow() {
        let ds = uniform_flow(4);
        let out = advector(5, 10).execute(&ds);
        let result = out.dataset.unwrap();
        for &s in result.point_scalars("speed").unwrap() {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
