//! The algorithm registry: one table, one row per algorithm, from which
//! every other description of the eight algorithms derives.
//!
//! [`Algorithm::name`], [`Algorithm::parse`], [`Algorithm::ALL`], and
//! [`Algorithm::CELL_CENTERED`] are all views of [`REGISTRY`]; adding a
//! ninth algorithm means adding one enum variant, one registry row, and
//! one [`Algorithm::default_spec`] arm (docs/REGISTRY.md walks through
//! it). The row order is pinned to the enum discriminant order by a
//! compile-time assertion so `REGISTRY[alg as usize]` is always the
//! right row.

use crate::filter::{Algorithm, KernelClass};

/// One registry row: everything the workspace knows about an algorithm
/// besides its parameterization (which lives in
/// [`AlgorithmSpec`](crate::spec::AlgorithmSpec)).
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// The enum id this row describes.
    pub algorithm: Algorithm,
    /// Display name ("Spherical Clip", "Volume Rendering", ...).
    pub name: &'static str,
    /// Normalized CLI aliases accepted by [`Algorithm::parse`] (ascii
    /// alphanumerics, lowercase — the normal form `parse` reduces its
    /// input to). The first alias is the canonical snake-less name.
    pub aliases: &'static [&'static str],
    /// Kernel taxonomy: the [`KernelClass`]es this algorithm's filter
    /// emits, in execution order (§VI of the paper).
    pub classes: &'static [KernelClass],
    /// Whether the algorithm iterates over every input cell and so is
    /// comparable by the paper's cells/sec rate (Fig. 3).
    pub cell_centered: bool,
}

/// The eight algorithms, in enum-discriminant (= paper Fig. 1) order.
pub const REGISTRY: [RegistryEntry; 8] = [
    RegistryEntry {
        algorithm: Algorithm::Contour,
        name: "Contour",
        aliases: &["contour", "isosurface", "marchingcubes"],
        classes: &[KernelClass::CaseTable, KernelClass::Interpolate],
        cell_centered: true,
    },
    RegistryEntry {
        algorithm: Algorithm::Threshold,
        name: "Threshold",
        aliases: &["threshold"],
        classes: &[KernelClass::CellClassify, KernelClass::GatherScatter],
        cell_centered: true,
    },
    RegistryEntry {
        algorithm: Algorithm::SphericalClip,
        name: "Spherical Clip",
        aliases: &["sphericalclip", "clip"],
        classes: &[
            KernelClass::SignedDistance,
            KernelClass::TetClip,
            KernelClass::GatherScatter,
        ],
        cell_centered: true,
    },
    RegistryEntry {
        algorithm: Algorithm::Isovolume,
        name: "Isovolume",
        aliases: &["isovolume"],
        classes: &[
            KernelClass::CellClassify,
            KernelClass::TetClip,
            KernelClass::GatherScatter,
        ],
        cell_centered: true,
    },
    RegistryEntry {
        algorithm: Algorithm::Slice,
        name: "Slice",
        aliases: &["slice", "threeslice", "3slice"],
        classes: &[
            KernelClass::SignedDistance,
            KernelClass::CaseTable,
            KernelClass::Interpolate,
        ],
        cell_centered: true,
    },
    RegistryEntry {
        algorithm: Algorithm::ParticleAdvection,
        name: "Particle Advection",
        aliases: &["particleadvection", "advection", "streamlines"],
        classes: &[KernelClass::Rk4Advect],
        cell_centered: false,
    },
    RegistryEntry {
        algorithm: Algorithm::RayTracing,
        name: "Ray Tracing",
        aliases: &["raytracing", "raytrace"],
        classes: &[
            KernelClass::BvhBuild,
            KernelClass::RayTraverse,
            KernelClass::GatherScatter,
        ],
        cell_centered: false,
    },
    RegistryEntry {
        algorithm: Algorithm::VolumeRendering,
        name: "Volume Rendering",
        aliases: &["volumerendering", "volren"],
        classes: &[KernelClass::RayMarch],
        cell_centered: false,
    },
];

// Row order == enum discriminant order, checked at compile time so
// `REGISTRY[alg as usize]` indexing can never pick the wrong row.
const _: () = {
    let mut i = 0;
    while i < REGISTRY.len() {
        assert!(
            REGISTRY[i].algorithm as usize == i,
            "REGISTRY rows must follow Algorithm discriminant order"
        );
        i += 1;
    }
};

/// Number of cell-centered rows, for sizing the derived table.
const fn cell_centered_count() -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < REGISTRY.len() {
        if REGISTRY[i].cell_centered {
            n += 1;
        }
        i += 1;
    }
    n
}

const _: () = assert!(
    cell_centered_count() == 5,
    "Algorithm::CELL_CENTERED length must track the registry flags"
);

/// Byte-lexicographic `a < b` usable in const context.
const fn str_lt(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut i = 0;
    while i < a.len() && i < b.len() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
        i += 1;
    }
    a.len() < b.len()
}

/// All eight algorithms, derived from [`REGISTRY`] row order.
pub const ALL: [Algorithm; 8] = {
    let mut all = [Algorithm::Contour; 8];
    let mut i = 0;
    while i < REGISTRY.len() {
        all[i] = REGISTRY[i].algorithm;
        i += 1;
    }
    all
};

/// The cell-centered algorithms, derived from the registry flags and
/// sorted alphabetically by display name (the Fig. 3 presentation
/// order).
pub const CELL_CENTERED: [Algorithm; 5] = {
    let mut out = [Algorithm::Contour; 5];
    let mut n = 0;
    let mut i = 0;
    while i < REGISTRY.len() {
        if REGISTRY[i].cell_centered {
            out[n] = REGISTRY[i].algorithm;
            n += 1;
        }
        i += 1;
    }
    let mut a = 0;
    while a < out.len() {
        let mut min = a;
        let mut b = a + 1;
        while b < out.len() {
            if str_lt(
                REGISTRY[out[b] as usize].name,
                REGISTRY[out[min] as usize].name,
            ) {
                min = b;
            }
            b += 1;
        }
        let tmp = out[a];
        out[a] = out[min];
        out[min] = tmp;
        a += 1;
    }
    out
};

/// The registry row for an algorithm.
pub const fn entry(algorithm: Algorithm) -> &'static RegistryEntry {
    &REGISTRY[algorithm as usize]
}

/// Parse a CLI-style name: case/space/underscore insensitive, matched
/// against the registry alias tables.
pub fn parse(s: &str) -> Option<Algorithm> {
    let norm: String = s
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    REGISTRY
        .iter()
        .find(|e| e.aliases.contains(&norm.as_str()))
        .map(|e| e.algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_indexing_matches_rows() {
        for (i, row) in REGISTRY.iter().enumerate() {
            assert_eq!(entry(row.algorithm).name, row.name);
            assert_eq!(row.algorithm as usize, i);
        }
    }

    #[test]
    fn names_and_aliases_are_unique_and_normalized() {
        let mut names = std::collections::HashSet::new();
        let mut aliases = std::collections::HashSet::new();
        for row in &REGISTRY {
            assert!(names.insert(row.name), "duplicate name {}", row.name);
            assert!(!row.aliases.is_empty(), "{} has no aliases", row.name);
            for a in row.aliases {
                assert!(aliases.insert(*a), "alias {a} claimed twice");
                assert!(
                    a.chars()
                        .all(|c| c.is_ascii_alphanumeric() && !c.is_ascii_uppercase()),
                    "alias {a} is not in parse normal form"
                );
            }
        }
    }

    #[test]
    fn every_row_has_kernel_classes() {
        for row in &REGISTRY {
            assert!(!row.classes.is_empty(), "{} has no classes", row.name);
        }
    }

    #[test]
    fn cell_centered_table_is_alphabetical_and_flag_consistent() {
        let names: Vec<&str> = CELL_CENTERED.iter().map(|a| entry(*a).name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "CELL_CENTERED must be name-sorted");
        for row in &REGISTRY {
            assert_eq!(
                CELL_CENTERED.contains(&row.algorithm),
                row.cell_centered,
                "{} flag drifted",
                row.name
            );
        }
    }

    #[test]
    fn parse_covers_every_alias_and_only_aliases() {
        for row in &REGISTRY {
            for a in row.aliases {
                assert_eq!(parse(a), Some(row.algorithm), "alias {a}");
            }
            assert_eq!(parse(row.name), Some(row.algorithm), "name {}", row.name);
        }
        assert_eq!(parse("bogus"), None);
        assert_eq!(parse(""), None);
    }
}
