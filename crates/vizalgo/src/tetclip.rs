//! Tetrahedral clipping: the shared engine behind spherical clip and
//! isovolume.
//!
//! Cells that straddle an implicit surface are decomposed into
//! tetrahedra; each tetrahedron is clipped against the scalar value,
//! keeping the side where `value >= iso` ([`clip_keep_above`]) or
//! `value <= iso` ([`clip_keep_below`]). The clipped pieces are emitted
//! as new tetrahedra with interpolated vertices, exactly as VTK-m's clip
//! worklets subdivide straddling cells (§III-B3/B4 of the paper).
//!
//! The keep-below side is computed by negating the per-point scalars *at
//! comparison time* instead of rewriting `mesh.values` — IEEE-754
//! negation is exact, so classification, interpolation parameters, and
//! weld keys are bit-identical to clipping the negated mesh at `-iso`,
//! without the O(points) traffic per clipped cell that the old
//! negate-clip-negate dance cost isovolume.
//!
//! The `_into` variants append into caller-owned scratch buffers
//! (`arena::TetScratch`) so the per-cell inner loops of `clip` and
//! `isovolume` allocate nothing after warm-up.

use crate::arena::{pack_edge_iso, WeldMap};
use vizmesh::{Vec3, WorkCounters};

/// Decomposition of a hexahedron (VTK corner order) into 6 tetrahedra
/// sharing the 0–6 main diagonal. The union tiles the hex exactly.
pub const HEX_TO_TETS: [[usize; 4]; 6] = [
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
    [0, 5, 1, 6],
];

/// A growing tetrahedral mesh with per-point scalar values and vertex
/// welding on interpolated edges.
#[derive(Debug, Default)]
pub struct TetMesh {
    pub points: Vec<Vec3>,
    /// Clip scalar at each point (signed distance or field value).
    pub values: Vec<f64>,
    /// A carried data scalar (e.g. the energy field), interpolated along
    /// with the clip scalar so output meshes keep their colors.
    pub payloads: Vec<f64>,
    pub tets: Vec<[u32; 4]>,
    /// Weld map for interpolated edge points, keyed by the packed ordered
    /// pair of parent point ids and the interpolation target's bits.
    weld: WeldMap<u128>,
}

impl TetMesh {
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty mesh whose point arrays and weld table are pre-sized for
    /// roughly `points` vertices (a hint; the mesh still grows on
    /// demand).
    pub fn with_point_capacity(points: usize) -> Self {
        TetMesh {
            points: Vec::with_capacity(points),
            values: Vec::with_capacity(points),
            payloads: Vec::with_capacity(points),
            tets: Vec::new(),
            weld: WeldMap::with_capacity(points / 2),
        }
    }

    /// Add an original (non-interpolated) point.
    pub fn add_point(&mut self, p: Vec3, value: f64) -> u32 {
        self.add_point_with(p, value, value)
    }

    /// Add an original point carrying a separate data payload.
    pub fn add_point_with(&mut self, p: Vec3, value: f64, payload: f64) -> u32 {
        self.points.push(p);
        self.values.push(value);
        self.payloads.push(payload);
        (self.points.len() - 1) as u32
    }

    /// Signed volume of a tet.
    pub fn tet_volume(&self, t: [u32; 4]) -> f64 {
        let (a, b, c, d) = (
            self.points[t[0] as usize],
            self.points[t[1] as usize],
            self.points[t[2] as usize],
            self.points[t[3] as usize],
        );
        (b - a).cross(c - a).dot(d - a) / 6.0
    }

    /// Total unsigned volume.
    pub fn total_volume(&self) -> f64 {
        self.tets.iter().map(|&t| self.tet_volume(t).abs()).sum()
    }

    /// Interpolated point on edge `(a, b)` where the (possibly
    /// sign-flipped) scalar hits `iso`, welded so the same edge/iso pair
    /// reuses one vertex. `iso` is the *effective* isovalue: for a
    /// keep-below clip at `hi` the caller passes `-hi` with
    /// `flip = true`, so weld keys (and therefore point identities)
    /// match a literal negate-the-mesh clip bit for bit.
    fn edge_point(&mut self, a: u32, b: u32, iso: f64, flip: bool) -> u32 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let key = pack_edge_iso(lo, hi, iso.to_bits());
        if let Some(id) = self.weld.get(key) {
            return id;
        }
        let (mut va, mut vb) = (self.values[a as usize], self.values[b as usize]);
        if flip {
            va = -va;
            vb = -vb;
        }
        let t = ((iso - va) / (vb - va)).clamp(0.0, 1.0);
        let p = self.points[a as usize].lerp(self.points[b as usize], t);
        let pay =
            self.payloads[a as usize] + (self.payloads[b as usize] - self.payloads[a as usize]) * t;
        let value = if flip { -iso } else { iso };
        let id = self.add_point_with(p, value, pay);
        self.weld.insert(key, id);
        id
    }
}

/// Clip every tet of `mesh`, keeping the region where `value >= iso`.
/// Returns the clipped tet list (indices into the same, grown, mesh) and
/// the work performed.
pub fn clip_keep_above(
    mesh: &mut TetMesh,
    tets: &[[u32; 4]],
    iso: f64,
) -> (Vec<[u32; 4]>, WorkCounters) {
    let mut out = Vec::new();
    let work = clip_keep_above_into(mesh, tets, iso, &mut out);
    (out, work)
}

/// Clip every tet of `mesh`, keeping the region where `value <= iso`.
pub fn clip_keep_below(
    mesh: &mut TetMesh,
    tets: &[[u32; 4]],
    iso: f64,
) -> (Vec<[u32; 4]>, WorkCounters) {
    let mut out = Vec::new();
    let work = clip_keep_below_into(mesh, tets, iso, &mut out);
    (out, work)
}

/// [`clip_keep_above`] writing into a reused scratch buffer: `out` is
/// cleared, then filled. Returns the work performed.
pub fn clip_keep_above_into(
    mesh: &mut TetMesh,
    tets: &[[u32; 4]],
    iso: f64,
    out: &mut Vec<[u32; 4]>,
) -> WorkCounters {
    clip_tets(mesh, tets, iso, false, out)
}

/// [`clip_keep_below`] writing into a reused scratch buffer: `out` is
/// cleared, then filled. Returns the work performed.
pub fn clip_keep_below_into(
    mesh: &mut TetMesh,
    tets: &[[u32; 4]],
    iso: f64,
    out: &mut Vec<[u32; 4]>,
) -> WorkCounters {
    clip_tets(mesh, tets, -iso, true, out)
}

/// The one clip core. `flip = false` keeps `value >= iso`; `flip = true`
/// keeps `-value >= iso`, i.e. `value <= -iso`, evaluated by negating
/// scalars at the comparison (exact under IEEE-754, so results are
/// bit-identical to clipping a negated mesh).
fn clip_tets(
    mesh: &mut TetMesh,
    tets: &[[u32; 4]],
    iso: f64,
    flip: bool,
    out: &mut Vec<[u32; 4]>,
) -> WorkCounters {
    let want = 3 * tets.len();
    if out.capacity() < want {
        // First use of this scratch buffer (or an unusually large cell):
        // size it once; later cells reuse the allocation.
        *out = Vec::with_capacity(want.max(16));
    }
    out.clear();
    let mut work = WorkCounters::new();
    let value_of = |mesh: &TetMesh, v: u32| {
        let raw = mesh.values[v as usize];
        if flip {
            -raw
        } else {
            raw
        }
    };
    for &tet in tets {
        // Partition corners into kept (value >= iso) and dropped.
        let mut kept = [0u32; 4];
        let mut dropped = [0u32; 4];
        let (mut nk, mut nd) = (0usize, 0usize);
        for &v in &tet {
            if value_of(mesh, v) >= iso {
                kept[nk] = v;
                nk += 1;
            } else {
                dropped[nd] = v;
                nd += 1;
            }
        }
        work.tally(1, 24, 4, 32 + 96, 0);
        match nk {
            0 => {}
            4 => {
                out.push(tet);
                work.tally(1, 4, 0, 0, 16);
            }
            1 => {
                // One kept corner a: tet (a, ab', ac', ad').
                let a = kept[0];
                let p = [
                    a,
                    mesh.edge_point(a, dropped[0], iso, flip),
                    mesh.edge_point(a, dropped[1], iso, flip),
                    mesh.edge_point(a, dropped[2], iso, flip),
                ];
                out.push(p);
                work.tally(1, 120, 36, 96, 64);
            }
            3 => {
                // One dropped corner d: prism between triangle (a, b, c)
                // and (ad', bd', cd'), split into 3 tets.
                let d = dropped[0];
                let (a, b, c) = (kept[0], kept[1], kept[2]);
                let ad = mesh.edge_point(a, d, iso, flip);
                let bd = mesh.edge_point(b, d, iso, flip);
                let cd = mesh.edge_point(c, d, iso, flip);
                out.push([a, b, c, ad]);
                out.push([b, c, ad, bd]);
                out.push([c, ad, bd, cd]);
                work.tally(3, 90, 28, 96, 64);
            }
            2 => {
                // Kept a, b; dropped c, d: prism between (a, ac', ad') and
                // (b, bc', bd').
                let (a, b) = (kept[0], kept[1]);
                let (c, d) = (dropped[0], dropped[1]);
                let ac = mesh.edge_point(a, c, iso, flip);
                let ad = mesh.edge_point(a, d, iso, flip);
                let bc = mesh.edge_point(b, c, iso, flip);
                let bd = mesh.edge_point(b, d, iso, flip);
                out.push([a, ac, ad, b]);
                out.push([ac, ad, b, bc]);
                out.push([ad, b, bc, bd]);
                work.tally(3, 110, 34, 128, 64);
            }
            // lint: infallible because a tetrahedron keeps zero to four vertices
            _ => unreachable!(),
        }
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TetScratch;

    /// Build a single-tet mesh with the given corner values.
    fn one_tet(values: [f64; 4]) -> (TetMesh, [u32; 4]) {
        let mut m = TetMesh::new();
        let t = [
            m.add_point(Vec3::ZERO, values[0]),
            m.add_point(Vec3::X, values[1]),
            m.add_point(Vec3::Y, values[2]),
            m.add_point(Vec3::Z, values[3]),
        ];
        (m, t)
    }

    fn volume_of(mesh: &TetMesh, tets: &[[u32; 4]]) -> f64 {
        tets.iter().map(|&t| mesh.tet_volume(t).abs()).sum()
    }

    #[test]
    fn hex_decomposition_tiles_volume() {
        // Unit cube corners in VTK order.
        let corners = crate::contour::CORNERS;
        let mut m = TetMesh::new();
        let ids: Vec<u32> = corners
            .iter()
            .map(|&c| m.add_point(Vec3::from(c), 0.0))
            .collect();
        let mut vol = 0.0;
        for tet in HEX_TO_TETS {
            let t = [ids[tet[0]], ids[tet[1]], ids[tet[2]], ids[tet[3]]];
            let v = m.tet_volume(t).abs();
            assert!(v > 0.0, "degenerate tet in decomposition");
            vol += v;
        }
        assert!((vol - 1.0).abs() < 1e-12, "volume = {vol}");
    }

    #[test]
    fn keep_all_and_drop_all() {
        let (mut m, t) = one_tet([1.0, 1.0, 1.0, 1.0]);
        let (kept, _) = clip_keep_above(&mut m, &[t], 0.0);
        assert_eq!(kept, vec![t]);
        let (dropped, _) = clip_keep_above(&mut m, &[t], 2.0);
        assert!(dropped.is_empty());
    }

    #[test]
    fn one_corner_kept_produces_corner_tet() {
        let (mut m, t) = one_tet([1.0, -1.0, -1.0, -1.0]);
        let (kept, _) = clip_keep_above(&mut m, &[t], 0.0);
        assert_eq!(kept.len(), 1);
        // The kept tet's volume is 1/8 of the original (midpoint cuts).
        let orig = 1.0 / 6.0;
        let v = volume_of(&m, &kept);
        assert!((v - orig / 8.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn three_corners_kept_is_complement_of_one() {
        let (mut m, t) = one_tet([-1.0, 1.0, 1.0, 1.0]);
        let (kept, _) = clip_keep_above(&mut m, &[t], 0.0);
        assert_eq!(kept.len(), 3);
        let orig = 1.0 / 6.0;
        let v = volume_of(&m, &kept);
        assert!((v - orig * 7.0 / 8.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn clip_pieces_partition_volume() {
        // For any corner values, above-pieces + below-pieces = whole tet.
        let cases = [
            [0.3, -0.7, 0.9, -0.1],
            [1.0, 2.0, -3.0, 4.0],
            [-1.0, -2.0, 0.5, 0.7],
            [0.1, 0.2, 0.3, -0.4],
        ];
        for values in cases {
            let (mut m, t) = one_tet(values);
            let (above, _) = clip_keep_above(&mut m, &[t], 0.0);
            let neg: Vec<f64> = m.values.iter().map(|v| -v).collect();
            let mut m2 = TetMesh::new();
            // Rebuild with negated values for the below side.
            let t2 = [
                m2.add_point(Vec3::ZERO, neg[0]),
                m2.add_point(Vec3::X, neg[1]),
                m2.add_point(Vec3::Y, neg[2]),
                m2.add_point(Vec3::Z, neg[3]),
            ];
            let (below, _) = clip_keep_above(&mut m2, &[t2], 0.0);
            let total = volume_of(&m, &above) + volume_of(&m2, &below);
            assert!(
                (total - 1.0 / 6.0).abs() < 1e-12,
                "values {values:?}: {total}"
            );
        }
    }

    #[test]
    fn keep_below_matches_negated_keep_above_bitwise() {
        // clip_keep_below(hi) must reproduce the old negate/clip/negate
        // sequence exactly: same points, same values, same connectivity.
        let cases = [
            [0.3, -0.7, 0.9, -0.1],
            [1.0, 2.0, -3.0, 4.0],
            [0.1, 0.2, 0.3, -0.4],
        ];
        for values in cases {
            let hi = 0.25;
            let (mut direct, t) = one_tet(values);
            let (below, _) = clip_keep_below(&mut direct, &[t], hi);

            let (mut via_negate, t2) = one_tet(values);
            for v in via_negate.values.iter_mut() {
                *v = -*v;
            }
            let (kept, _) = clip_keep_above(&mut via_negate, &[t2], -hi);
            for v in via_negate.values.iter_mut() {
                *v = -*v;
            }

            assert_eq!(below, kept, "connectivity for {values:?}");
            assert_eq!(direct.points.len(), via_negate.points.len());
            for i in 0..direct.points.len() {
                let (p, q) = (direct.points[i], via_negate.points[i]);
                assert_eq!(
                    [p.x, p.y, p.z].map(f64::to_bits),
                    [q.x, q.y, q.z].map(f64::to_bits),
                    "point {i} for {values:?}"
                );
                assert_eq!(
                    direct.values[i].to_bits(),
                    via_negate.values[i].to_bits(),
                    "value {i} for {values:?}"
                );
            }
        }
    }

    #[test]
    fn keep_below_then_above_partitions_volume() {
        let (mut m, t) = one_tet([0.3, -0.7, 0.9, -0.1]);
        let (above, _) = clip_keep_above(&mut m, &[t], 0.0);
        let (below, _) = clip_keep_below(&mut m, &[t], 0.0);
        let total = volume_of(&m, &above) + volume_of(&m, &below);
        assert!((total - 1.0 / 6.0).abs() < 1e-12, "total = {total}");
    }

    #[test]
    fn scratch_reuse_leaks_no_state_between_cells() {
        // Clip two disjoint cells through the same scratch buffers; the
        // results must match fresh-buffer clips cell by cell.
        let mut scratch = TetScratch::new();
        let mut welded = TetMesh::new();
        let mut fresh = TetMesh::new();
        let cells = [
            ([0.4, -0.6, 0.2, -0.9], 0.1),
            ([-0.5, 0.5, -0.5, 0.5], 0.0),
            ([1.0, 1.0, 1.0, 1.0], 0.5),
        ];
        let mut add_cell = |m: &mut TetMesh, vals: [f64; 4], offset: f64| {
            [
                m.add_point(Vec3::splat(offset), vals[0]),
                m.add_point(Vec3::splat(offset) + Vec3::X, vals[1]),
                m.add_point(Vec3::splat(offset) + Vec3::Y, vals[2]),
                m.add_point(Vec3::splat(offset) + Vec3::Z, vals[3]),
            ]
        };
        for (i, &(vals, iso)) in cells.iter().enumerate() {
            let t = add_cell(&mut welded, vals, i as f64 * 10.0);
            scratch.tets.clear();
            scratch.tets.push(t);
            clip_keep_above_into(&mut welded, &scratch.tets, iso, &mut scratch.mid);
            clip_keep_below_into(&mut welded, &scratch.mid, iso + 0.3, &mut scratch.kept);

            let t2 = add_cell(&mut fresh, vals, i as f64 * 10.0);
            let (mid, _) = clip_keep_above(&mut fresh, &[t2], iso);
            let (kept, _) = clip_keep_below(&mut fresh, &mid, iso + 0.3);

            // Same piece count and same volume, cell by cell — nothing
            // from the previous cell's scratch contents bleeds through.
            assert_eq!(scratch.mid.len(), mid.len(), "cell {i} mid");
            assert_eq!(scratch.kept.len(), kept.len(), "cell {i} kept");
            let a: f64 = scratch
                .kept
                .iter()
                .map(|&t| welded.tet_volume(t).abs())
                .sum();
            let b: f64 = kept.iter().map(|&t| fresh.tet_volume(t).abs()).sum();
            assert!((a - b).abs() < 1e-12, "cell {i}: {a} vs {b}");
        }
    }

    #[test]
    fn edge_points_are_welded_across_tets() {
        // Two tets sharing edge (0, 1) with a crossing on it: the
        // interpolated point must be created once.
        let mut m = TetMesh::new();
        let p0 = m.add_point(Vec3::ZERO, -1.0);
        let p1 = m.add_point(Vec3::X, 1.0);
        let p2 = m.add_point(Vec3::Y, 1.0);
        let p3 = m.add_point(Vec3::Z, 1.0);
        let p4 = m.add_point(Vec3::new(1.0, 1.0, 1.0), 1.0);
        let tets = [[p0, p1, p2, p3], [p0, p1, p2, p4]];
        let before = m.points.len();
        let (kept, _) = clip_keep_above(&mut m, &tets, 0.0);
        assert_eq!(kept.len(), 6);
        // Edges crossing: (0,1), (0,2), (0,3) for tet 1 and (0,1), (0,2),
        // (0,4) for tet 2 → 4 unique new points, not 6.
        assert_eq!(m.points.len(), before + 4);
    }

    #[test]
    fn interpolated_points_sit_at_isovalue() {
        let (mut m, t) = one_tet([2.0, -2.0, -2.0, -2.0]);
        let (_, _) = clip_keep_above(&mut m, &[t], 1.0);
        // New points (indices 4+) carry the isovalue.
        for i in 4..m.points.len() {
            assert_eq!(m.values[i], 1.0);
        }
        // Interpolation position: iso 1.0 between 2.0 and -2.0 is t = 0.25.
        let p = m.points[4];
        assert!((p - Vec3::new(0.25, 0.0, 0.0)).length() < 1e-12);
    }

    #[test]
    fn work_counts_cells_processed() {
        let (mut m, t) = one_tet([1.0, 1.0, -1.0, -1.0]);
        let (_, w) = clip_keep_above(&mut m, &[t], 0.0);
        assert!(w.items >= 1);
        assert!(w.instructions > 0);
    }
}
