//! Property-based and cross-implementation tests for the visualization
//! algorithms.

use proptest::prelude::*;
use vizalgo::contour::marching_cubes;
use vizalgo::marching_tetra::{marching_tetrahedra, soup_area};
use vizalgo::tetclip::{clip_keep_above, TetMesh};
use vizalgo::{Filter, Isovolume, SphericalClip, Threshold};
use vizmesh::{Association, DataSet, Field, UniformGrid, Vec3};

/// Deterministic pseudo-random smooth field from a seed.
fn wavy_field(grid: &UniformGrid, seed: u64) -> Vec<f64> {
    let a = 3.0 + (seed % 5) as f64;
    let b = 2.0 + (seed % 7) as f64;
    let c = 1.0 + (seed % 3) as f64;
    (0..grid.num_points())
        .map(|id| {
            let p = grid.point_coord_id(id);
            (a * p.x).sin() + (b * p.y).cos() * (c * p.z).sin() + 0.3 * p.x * p.y
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Marching cubes and marching tetrahedra agree on whether a surface
    /// exists and produce comparable areas on random smooth fields.
    #[test]
    fn mc_and_mt_agree(seed in 0u64..100, iso in -0.8f64..1.2) {
        let grid = UniformGrid::cube_cells(5);
        let values = wavy_field(&grid, seed);
        let mc = marching_cubes(&grid, &values, iso);
        let mt = marching_tetrahedra(&grid, &values, iso);
        prop_assert_eq!(mc.triangles.num_cells() == 0, mt.is_empty());
        if !mt.is_empty() {
            let mut mc_area = 0.0;
            for c in 0..mc.triangles.num_cells() {
                let t = mc.triangles.cell_points(c);
                let (a, b, cc) = (
                    mc.points[t[0] as usize],
                    mc.points[t[1] as usize],
                    mc.points[t[2] as usize],
                );
                mc_area += 0.5 * (b - a).cross(cc - a).length();
            }
            let mt_area = soup_area(&mt);
            // The tessellations differ at O(h); they must still be within
            // ~20 % of each other for smooth fields.
            let rel = (mc_area - mt_area).abs() / mt_area.max(1e-12);
            prop_assert!(rel < 0.2, "MC {mc_area} vs MT {mt_area}");
        }
    }

    /// MC output is always watertight away from the domain boundary.
    #[test]
    fn mc_watertight(seed in 0u64..50, iso in -0.5f64..1.0) {
        let grid = UniformGrid::cube_cells(4);
        let values = wavy_field(&grid, seed);
        let mc = marching_cubes(&grid, &values, iso);
        let mut edges = std::collections::HashMap::new();
        for c in 0..mc.triangles.num_cells() {
            let t = mc.triangles.cell_points(c);
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                *edges.entry((a.min(b), a.max(b))).or_insert(0u32) += 1;
            }
        }
        let on_boundary = |p: Vec3| {
            let eps = 1e-9;
            p.x < eps || p.y < eps || p.z < eps
                || p.x > 1.0 - eps || p.y > 1.0 - eps || p.z > 1.0 - eps
        };
        for ((a, b), n) in edges {
            prop_assert!(n <= 2);
            if n == 1 {
                prop_assert!(
                    on_boundary(mc.points[a as usize])
                        && on_boundary(mc.points[b as usize])
                );
            }
        }
    }

    /// Clipping a random tet: the kept and complementary volumes always
    /// partition the original.
    #[test]
    fn tet_clip_partitions_volume(
        vals in prop::array::uniform4(-2.0f64..2.0),
        iso in -1.0f64..1.0,
        px in 0.2f64..2.0,
        py in 0.2f64..2.0,
        pz in 0.2f64..2.0,
    ) {
        let build = |values: [f64; 4]| {
            let mut m = TetMesh::new();
            let t = [
                m.add_point(Vec3::ZERO, values[0]),
                m.add_point(Vec3::new(px, 0.0, 0.0), values[1]),
                m.add_point(Vec3::new(0.0, py, 0.0), values[2]),
                m.add_point(Vec3::new(0.0, 0.0, pz), values[3]),
            ];
            (m, t)
        };
        let (mut m1, t1) = build(vals);
        let (above, _) = clip_keep_above(&mut m1, &[t1], iso);
        let neg = [-vals[0], -vals[1], -vals[2], -vals[3]];
        let (mut m2, t2) = build(neg);
        let (below, _) = clip_keep_above(&mut m2, &[t2], -iso);
        let vol = |m: &TetMesh, ts: &[[u32; 4]]| -> f64 {
            ts.iter().map(|&t| m.tet_volume(t).abs()).sum()
        };
        let whole = px * py * pz / 6.0;
        let sum = vol(&m1, &above) + vol(&m2, &below);
        // `>=` on both sides keeps boundary-degenerate slivers in both
        // halves, so allow tiny overlap.
        prop_assert!((sum - whole).abs() < 1e-9 * whole.max(1.0) + 1e-12,
            "above + below = {sum}, whole = {whole}");
    }

    /// Threshold keeps exactly the cells whose value is in range.
    #[test]
    fn threshold_selectivity(lo in 0.0f64..0.5, width in 0.0f64..0.5) {
        let grid = UniformGrid::cube_cells(4);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|c| c as f64 / 63.0)
            .collect();
        let expected = vals
            .iter()
            .filter(|&&v| v >= lo && v <= lo + width)
            .count();
        let ds = DataSet::uniform(grid)
            .with_field(Field::scalar("v", Association::Cells, vals));
        let out = Threshold::new("v", lo, lo + width).execute(&ds);
        prop_assert_eq!(out.dataset.unwrap().num_cells(), expected);
    }

    /// Isovolume of a linear ramp has exactly the band volume.
    #[test]
    fn isovolume_band_volume(lo in 0.05f64..0.5, width in 0.05f64..0.45) {
        let hi = (lo + width).min(0.999);
        let grid = UniformGrid::cube_cells(5);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        let ds = DataSet::uniform(grid)
            .with_field(Field::scalar("f", Association::Points, vals));
        let out = Isovolume::new("f", lo, hi).execute(&ds);
        let result = out.dataset.unwrap();
        let (points, cells) = result.as_explicit().unwrap();
        let mut vol = 0.0;
        for (shape, conn) in cells.iter() {
            match shape {
                vizmesh::CellShape::Tetra => {
                    let (a, b, c, d) = (
                        points[conn[0] as usize],
                        points[conn[1] as usize],
                        points[conn[2] as usize],
                        points[conn[3] as usize],
                    );
                    vol += ((b - a).cross(c - a).dot(d - a) / 6.0).abs();
                }
                vizmesh::CellShape::Hexahedron => {
                    let a = points[conn[0] as usize];
                    let g = points[conn[6] as usize];
                    let e = g - a;
                    vol += (e.x * e.y * e.z).abs();
                }
                _ => {}
            }
        }
        prop_assert!((vol - (hi - lo)).abs() < 1e-6, "vol {vol} vs {}", hi - lo);
    }

    /// Spherical clip never keeps volume deep inside the sphere and the
    /// kept volume is monotone in the radius.
    #[test]
    fn clip_volume_monotone_in_radius(r1 in 0.1f64..0.3, dr in 0.02f64..0.2) {
        let grid = UniformGrid::cube_cells(6);
        let np = grid.num_points();
        let ds = DataSet::uniform(grid)
            .with_field(Field::scalar("energy", Association::Points, vec![1.0; np]));
        let vol = |r: f64| -> f64 {
            let out = SphericalClip::new(Vec3::splat(0.5), r).execute(&ds);
            let result = out.dataset.unwrap();
            let (points, cells) = result.as_explicit().unwrap();
            let mut v = 0.0;
            for (shape, conn) in cells.iter() {
                match shape {
                    vizmesh::CellShape::Tetra => {
                        let (a, b, c, d) = (
                            points[conn[0] as usize],
                            points[conn[1] as usize],
                            points[conn[2] as usize],
                            points[conn[3] as usize],
                        );
                        v += ((b - a).cross(c - a).dot(d - a) / 6.0).abs();
                    }
                    vizmesh::CellShape::Hexahedron => {
                        let a = points[conn[0] as usize];
                        let g = points[conn[6] as usize];
                        let e = g - a;
                        v += (e.x * e.y * e.z).abs();
                    }
                    _ => {}
                }
            }
            v
        };
        let small = vol(r1);
        let large = vol(r1 + dr);
        prop_assert!(large <= small + 1e-9, "bigger sphere kept more volume");
    }
}
