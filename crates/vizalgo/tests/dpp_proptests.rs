//! Property laws for the data-parallel primitive vocabulary
//! (`vizalgo::dpp::primitives`): one algebraic law per primitive,
//! checked against an independent reference formulation. These are the
//! contracts the DPP kernel formulations (and the differential
//! conformance suite) lean on — see docs/DPP.md.

use proptest::prelude::*;
use std::collections::HashMap;
use vizalgo::dpp::primitives::{self, DppTrace};

/// Deterministic Fisher–Yates permutation of `0..n` from a seed
/// (the stub proptest has no shuffle strategy; xorshift64 keeps runs
/// reproducible under both the stub and the real crate).
fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let j = (s % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `map` is length-preserving and elementwise: `out[i] = f(in[i])`.
    #[test]
    fn map_is_elementwise(xs in prop::collection::vec(-1000i64..1000, 0..64)) {
        let mut tr = DppTrace::new();
        let out = primitives::map(&mut tr, &xs, |&x| 3 * x + 1);
        prop_assert_eq!(out.len(), xs.len());
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i], 3 * x + 1);
        }
    }

    /// `inclusive_scan` is the monotone prefix sum: same length, each
    /// entry the running total, last entry the full sum.
    #[test]
    fn inclusive_scan_is_monotone_prefix_sum(xs in prop::collection::vec(0u32..16, 0..64)) {
        let mut tr = DppTrace::new();
        let out = primitives::inclusive_scan(&mut tr, &xs);
        prop_assert_eq!(out.len(), xs.len());
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]), "scan must be monotone");
        let mut acc = 0u32;
        for (i, &x) in xs.iter().enumerate() {
            acc += x;
            prop_assert_eq!(out[i], acc);
        }
        prop_assert_eq!(out.last().copied().unwrap_or(0), xs.iter().sum::<u32>());
    }

    /// `gather` is definitionally `out[i] = src[idx[i]]`.
    #[test]
    fn gather_reads_through_indices(
        src in prop::collection::vec(-1e6f64..1e6, 1..64),
        raw in prop::collection::vec(0u32..1_000_000, 0..64),
    ) {
        let idx: Vec<u32> = raw.iter().map(|&r| r % src.len() as u32).collect();
        let mut tr = DppTrace::new();
        let out = primitives::gather(&mut tr, &src, &idx);
        prop_assert_eq!(out.len(), idx.len());
        for (i, &j) in idx.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), src[j as usize].to_bits());
        }
    }

    /// `scatter` through a permutation inverts `gather` through the same
    /// permutation (the unique-indices scatter contract).
    #[test]
    fn scatter_inverts_gather_on_permutations(
        src in prop::collection::vec(-1e6f64..1e6, 1..64),
        seed in 0u64..10_000,
    ) {
        let idx = permutation(src.len(), seed);
        let mut tr = DppTrace::new();
        let gathered = primitives::gather(&mut tr, &src, &idx);
        let mut out = vec![0.0f64; src.len()];
        primitives::scatter(&mut tr, &gathered, &idx, &mut out);
        for (a, b) in out.iter().zip(&src) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `compact` keeps exactly the flagged elements, in order; the index
    /// form returns the strictly ascending flagged positions.
    #[test]
    fn compact_keeps_flagged_in_order(
        pairs in prop::collection::vec((any::<bool>(), -1000i64..1000), 0..64),
    ) {
        let flags: Vec<bool> = pairs.iter().map(|&(f, _)| f).collect();
        let src: Vec<i64> = pairs.iter().map(|&(_, v)| v).collect();
        let mut tr = DppTrace::new();
        let out = primitives::compact(&mut tr, &src, &flags);
        let expect: Vec<i64> = src
            .iter()
            .zip(&flags)
            .filter(|&(_, &f)| f)
            .map(|(&v, _)| v)
            .collect();
        prop_assert_eq!(out, expect);
        let ids = primitives::compact_indices(&mut tr, &flags);
        prop_assert_eq!(ids.len(), flags.iter().filter(|&&f| f).count());
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "indices strictly ascending");
        prop_assert!(ids.iter().all(|&i| flags[i as usize]));
    }

    /// `sort_by_key` yields a sorted permutation: ordered output, same
    /// pair multiset as the input.
    #[test]
    fn sort_by_key_is_a_sorted_permutation(
        pairs in prop::collection::vec((0u64..16, 0u32..16), 0..64),
    ) {
        let mut sorted = pairs.clone();
        let mut tr = DppTrace::new();
        primitives::sort_by_key(&mut tr, &mut sorted);
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "output must be ordered");
        let mut counts: HashMap<(u64, u32), i64> = HashMap::new();
        for &p in &pairs {
            *counts.entry(p).or_insert(0) += 1;
        }
        for &p in &sorted {
            *counts.entry(p).or_insert(0) -= 1;
        }
        prop_assert!(counts.values().all(|&c| c == 0), "output must be a permutation");
    }

    /// `reduce_by_key` over sorted pairs emits each distinct key once,
    /// in ascending order, with the payloads folded — for `+`, the same
    /// per-key sums an order-independent hash accumulation produces.
    #[test]
    fn reduce_by_key_folds_each_key_once(
        pairs in prop::collection::vec((0u64..8, 0u32..100), 0..64),
    ) {
        let mut sorted = pairs.clone();
        let mut tr = DppTrace::new();
        primitives::sort_by_key(&mut tr, &mut sorted);
        let reduced = primitives::reduce_by_key(&mut tr, &sorted, |a, b| a + b);
        prop_assert!(
            reduced.windows(2).all(|w| w[0].0 < w[1].0),
            "keys strictly ascending"
        );
        let mut sums: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &pairs {
            *sums.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(reduced.len(), sums.len());
        for &(k, v) in &reduced {
            prop_assert_eq!(sums.get(&k).copied(), Some(v));
        }
    }
}
