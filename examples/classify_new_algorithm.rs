//! Classify an algorithm the paper never measured — its §VIII future
//! work: "Other visualization algorithms should be classified so
//! informed decisions can be made regarding how to allocate power."
//!
//! ```text
//! cargo run --release --example classify_new_algorithm
//! ```
//!
//! The ninth algorithm here is gradient-magnitude computation (shading
//! normals / feature detection), implemented and instrumented like the
//! paper's eight. The same study machinery sweeps it across the nine
//! caps and reports its class.

use vizpower_suite::powersim::CpuSpec;
use vizpower_suite::vizalgo::{Filter, Gradient};
use vizpower_suite::vizpower::characterize::characterize;
use vizpower_suite::vizpower::study::{dataset_for, CapSweep, PAPER_CAPS};
use vizpower_suite::vizpower::{classify, first_slowdown_cap, report};

fn main() {
    println!("running gradient-magnitude on the 64^3 CloverLeaf energy field ...");
    let data = dataset_for(64);
    let filter = Gradient::new("energy").with_vectors();
    let out = filter.execute(&data);
    let result = out.dataset.as_ref().unwrap();
    let (lo, hi) = result
        .field("energy_gradmag")
        .unwrap()
        .scalar_range()
        .unwrap();
    println!("  |∇energy| range: [{lo:.3}, {hi:.3}]\n");

    let spec = CpuSpec::broadwell_e5_2695v4();
    let workload = characterize("gradient", &out.kernels, &spec);
    let rows = PAPER_CAPS
        .iter()
        .map(|&cap| {
            let mut pkg = vizpower_suite::powersim::Package::new(spec.clone());
            pkg.run_capped(&workload, cap)
        })
        .collect();
    let sweep = CapSweep {
        algorithm: vizpower_suite::vizalgo::Algorithm::Slice, // closest label for display
        size: 64,
        input_cells: data.num_cells(),
        rows,
    };
    println!("Gradient (displayed under its nearest relative, slice):");
    print!("{}", report::render_table1(&sweep));

    let ratios = sweep.ratios();
    println!(
        "\nverdict: gradient-magnitude is {} (first 10% slowdown: {})",
        classify(&ratios),
        match first_slowdown_cap(&ratios) {
            Some(c) => format!("{c:.0} W"),
            None => "never".into(),
        }
    );
    println!(
        "IPC at default power: {:.2}",
        sweep.baseline().expect("non-empty sweep").avg_ipc
    );
    println!("\nlike the paper's cell-centered algorithms, the stencil is");
    println!("streaming and data-bound: another power-opportunity citizen.");
}
