//! Sweep an algorithm across the paper's nine power caps and print a
//! Table-I-style report.
//!
//! ```text
//! cargo run --release --example power_sweep -- [algorithm] [size]
//! cargo run --release --example power_sweep -- volren 32
//! ```
//!
//! Algorithms: contour, threshold, clip, isovolume, slice, advection,
//! raytracing, volren. Default: contour at 32³.

use vizpower_suite::vizalgo::Algorithm;
use vizpower_suite::vizpower::report;
use vizpower_suite::vizpower::study::{StudyConfig, StudyContext};
use vizpower_suite::vizpower::{classify, first_slowdown_cap};

fn main() {
    let algorithm = std::env::args()
        .nth(1)
        .and_then(|s| Algorithm::parse(&s))
        .unwrap_or(Algorithm::Contour);
    let size: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);

    println!("sweeping {algorithm} at {size}^3 across the paper's nine caps ...\n");
    let mut ctx = StudyContext::new(StudyConfig::paper());
    let sweep = ctx.sweep(algorithm, size);
    print!("{}", report::render_table1(&sweep));

    let ratios = sweep.ratios();
    println!(
        "\nclass: {}   first 10% slowdown: {}",
        classify(&ratios),
        match first_slowdown_cap(&ratios) {
            Some(c) => format!("{c:.0} W"),
            None => "never".into(),
        }
    );
    let last = ratios.last().unwrap();
    if last.data_intensive() {
        println!(
            "at 40 W the slowdown ({:.2}x) is smaller than the power cut ({:.1}x) —",
            last.tratio, last.pratio
        );
        println!(
            "users can trade {:.1}x less power for a {:.2}x longer run (paper §V-A).",
            last.pratio, last.tratio
        );
    } else {
        println!(
            "at 40 W the slowdown ({:.2}x) matches or exceeds the power cut ({:.1}x) —",
            last.tratio, last.pratio
        );
        println!("capping this algorithm buys nothing (paper §V-A).");
    }
}
