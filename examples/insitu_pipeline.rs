//! Tightly-coupled in situ run with power-budget advice.
//!
//! ```text
//! cargo run --release --example insitu_pipeline
//! ```
//!
//! Couples the CloverLeaf proxy with a contour pipeline and a
//! volume-rendered scene through the Ascent-like runtime (actions are
//! declared as JSON, exactly like an `ascent_actions.json`), then asks
//! the power advisor how a 140 W node budget should be split between the
//! simulation socket and the visualization socket — the paper's §VII use
//! case.

use vizpower_suite::insitu::{ActionList, InSituRuntime, RuntimeConfig, Trigger};
use vizpower_suite::powersim::{CpuSpec, Watts};
use vizpower_suite::vizalgo::{KernelClass, KernelReport};
use vizpower_suite::vizpower::advisor;
use vizpower_suite::vizpower::characterize::characterize;

const ACTIONS: &str = r#"[
    {"action": "add_pipeline", "name": "energy_contour",
     "filters": [{"type": "contour", "field": "energy", "isovalues": 10}]},
    {"action": "add_scene", "name": "volume",
     "renderer": {"type": "volume_rendering", "field": "energy",
                  "width": 64, "height": 64, "images": 8}}
]"#;

fn main() {
    let actions = ActionList::from_json(ACTIONS).expect("actions parse");
    let config = RuntimeConfig {
        grid_cells: 24,
        total_steps: 30,
        trigger: Trigger::EveryN { n: 10 },
    };
    println!("running CloverLeaf 24^3 for 30 steps, visualizing every 10 ...");
    let mut runtime = InSituRuntime::new(
        vizpower_suite::cloverleaf::Problem::TwoState,
        config,
        actions,
    );
    let run = runtime.run();

    for cycle in &run.cycles {
        let viz_instr: u64 = cycle.viz_kernels.iter().map(|k| k.work.instructions).sum();
        println!(
            "  cycle @ step {:>3}: sim {:>12} instr | viz {:>12} instr in {} kernels, {} images",
            cycle.step,
            cycle.sim_work.work.instructions,
            viz_instr,
            cycle.viz_kernels.len(),
            cycle.images.len()
        );
    }

    // Characterize both sides and ask the advisor for a split of a 140 W
    // two-socket budget (70 W + 70 W would be the naive choice).
    let spec = CpuSpec::broadwell_e5_2695v4();
    let sim_reports: Vec<KernelReport> = run.cycles.iter().map(|c| c.sim_work.clone()).collect();
    let viz_reports: Vec<KernelReport> = run
        .cycles
        .iter()
        .flat_map(|c| c.viz_kernels.iter().cloned())
        .collect();
    assert!(
        sim_reports
            .iter()
            .all(|r| r.class == KernelClass::Simulation),
        "simulation work is tagged with the Simulation class"
    );
    let sim_workload = characterize("cloverleaf", &sim_reports, &spec);
    let viz_workload = characterize("visualization", &viz_reports, &spec);

    let plan = advisor::allocate(&sim_workload, &viz_workload, Watts(140.0), &spec);
    println!("\npower advisor, {} W node budget:", plan.budget_watts);
    println!(
        "  simulation socket   {:>5.0} W\n  visualization socket {:>4.0} W",
        plan.sim_cap_watts, plan.viz_cap_watts
    );
    println!(
        "  completion time {:.3}s vs naive 70/70 split {:.3}s  ({:.2}x better)",
        plan.predicted_seconds,
        plan.naive_seconds,
        plan.improvement()
    );
    println!("\nthe data-bound visualization cedes its headroom to the");
    println!("power-hungry simulation — the paper's motivating runtime story.");
}
