//! Reproduce Fig. 1: one rendering per algorithm.
//!
//! ```text
//! cargo run --release --example render_gallery -- [output_dir]
//! ```
//!
//! Runs all eight algorithms on the energy field of the CloverLeaf proxy
//! and writes eight PPM images (default directory: `target/gallery`).
//! The six data-producing algorithms are rendered by ray-tracing their
//! extracted geometry through the scene ray tracer; ray tracing and
//! volume rendering produce images directly.

use std::path::PathBuf;
use vizpower_suite::powersim::Watts;
use vizpower_suite::vizalgo::colormap::ColorMap;
use vizpower_suite::vizalgo::raytrace::{Bvh, Triangle};
use vizpower_suite::vizalgo::{Algorithm, Filter};
use vizpower_suite::vizmesh::{Camera, CellShape, DataSet, Image, Vec3};
use vizpower_suite::vizpower::study::{dataset_for, StudyConfig};

/// Triangulate whatever geometry a filter produced (triangles directly;
/// tets and hexes via their faces; polylines as thin ribbons) with the
/// carried scalar for coloring.
fn soup_from(ds: &DataSet, field: &str) -> Vec<Triangle> {
    let (points, cells) = ds.as_explicit().expect("explicit output");
    let values = ds
        .point_scalars(field)
        .map(|v| v.to_vec())
        .unwrap_or_else(|| vec![0.5; points.len()]);
    let v = |i: u32| values.get(i as usize).copied().unwrap_or(0.5);
    let p = |i: u32| points[i as usize];
    let mut out = Vec::new();
    let quad = |out: &mut Vec<Triangle>, a: u32, b: u32, c: u32, d: u32| {
        out.push(Triangle {
            p: [p(a), p(b), p(c)],
            scalar: [v(a), v(b), v(c)],
        });
        out.push(Triangle {
            p: [p(a), p(c), p(d)],
            scalar: [v(a), v(c), v(d)],
        });
    };
    for (shape, conn) in cells.iter() {
        match shape {
            CellShape::Triangle => out.push(Triangle {
                p: [p(conn[0]), p(conn[1]), p(conn[2])],
                scalar: [v(conn[0]), v(conn[1]), v(conn[2])],
            }),
            CellShape::Tetra => {
                for f in [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]] {
                    out.push(Triangle {
                        p: [p(conn[f[0]]), p(conn[f[1]]), p(conn[f[2]])],
                        scalar: [v(conn[f[0]]), v(conn[f[1]]), v(conn[f[2]])],
                    });
                }
            }
            CellShape::Hexahedron => {
                quad(&mut out, conn[0], conn[3], conn[2], conn[1]);
                quad(&mut out, conn[4], conn[5], conn[6], conn[7]);
                quad(&mut out, conn[0], conn[1], conn[5], conn[4]);
                quad(&mut out, conn[1], conn[2], conn[6], conn[5]);
                quad(&mut out, conn[2], conn[3], conn[7], conn[6]);
                quad(&mut out, conn[3], conn[0], conn[4], conn[7]);
            }
            CellShape::PolyLine => {
                // Thin camera-agnostic ribbons.
                let w = 0.004;
                for seg in conn.windows(2) {
                    let (a, b) = (p(seg[0]), p(seg[1]));
                    let dir = (b - a).normalized();
                    let side = dir.cross(Vec3::Y).normalized() * w
                        + dir.cross(Vec3::X).normalized() * (w * 0.5);
                    out.push(Triangle {
                        p: [a - side, a + side, b + side],
                        scalar: [v(seg[0]), v(seg[0]), v(seg[1])],
                    });
                    out.push(Triangle {
                        p: [a - side, b + side, b - side],
                        scalar: [v(seg[0]), v(seg[1]), v(seg[1])],
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Ray-trace a triangle soup from a framing camera.
fn render_soup(tris: &[Triangle], px: usize) -> Image {
    let mut bounds = vizpower_suite::vizmesh::Aabb::empty();
    for t in tris {
        bounds.union(&t.bounds());
    }
    let cam = Camera::framing(&bounds);
    let (bvh, _) = Bvh::build(tris);
    let (lo, hi) = tris.iter().fold((f64::MAX, f64::MIN), |(lo, hi), t| {
        let tmin = t.scalar.iter().fold(f64::MAX, |a, &b| a.min(b));
        let tmax = t.scalar.iter().fold(f64::MIN, |a, &b| a.max(b));
        (lo.min(tmin), hi.max(tmax))
    });
    let cmap = ColorMap::cool_to_warm();
    let mut img = Image::new(px, px);
    for y in 0..px {
        for x in 0..px {
            let ray = cam.pixel_ray(x, y, px, px);
            let mut stats = (0, 0);
            if let Some((t, ti, u, v)) = bvh.intersect(tris, &ray, &mut stats) {
                let tri = &tris[ti as usize];
                let s = tri.scalar[0] * (1.0 - u - v) + tri.scalar[1] * u + tri.scalar[2] * v;
                let mut c = cmap.sample_range(s, lo, hi);
                let shade = (0.35 + 0.65 * tri.normal().dot(-ray.direction).abs()) as f32;
                c[0] *= shade;
                c[1] *= shade;
                c[2] *= shade;
                img.set_if_closer(x, y, t as f32, c);
            }
        }
    }
    img
}

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "target/gallery".into());
    std::fs::create_dir_all(&dir).unwrap();
    const PX: usize = 320;

    println!("building the CloverLeaf dataset (32^3) ...");
    let data = dataset_for(32);
    let config = StudyConfig {
        caps: vec![Watts(120.0)],
        isovalues: 10,
        render_px: PX,
        cameras: 1,
        particles: 400,
        advect_steps: 600,
    };

    for algorithm in Algorithm::ALL {
        let fname = dir.join(format!(
            "{}.ppm",
            algorithm.name().to_lowercase().replace(' ', "_")
        ));
        let img = match algorithm {
            Algorithm::RayTracing | Algorithm::VolumeRendering => {
                let renderer = config.spec(algorithm).build(&data);
                renderer.execute(&data).images.remove(0)
            }
            other => {
                let filter = config.spec(other).build(&data);
                let out = filter.execute(&data);
                let result = out.dataset.expect("geometry output");
                let field = match other {
                    Algorithm::ParticleAdvection => "speed",
                    Algorithm::Slice | Algorithm::Contour | Algorithm::Isovolume => "energy",
                    Algorithm::SphericalClip => "energy",
                    Algorithm::Threshold => "energy",
                    _ => unreachable!(),
                };
                let soup = soup_from(&result, field);
                if soup.is_empty() {
                    println!("  {algorithm}: produced no geometry, skipping");
                    continue;
                }
                render_soup(&soup, PX)
            }
        };
        img.save_ppm(&fname, [1.0, 1.0, 1.0]).unwrap();
        println!("  {algorithm:<20} -> {}", fname.display());
    }
    println!("\ngallery written to {}", dir.display());
}
