//! Quickstart: simulate, visualize, measure under a power cap.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the CloverLeaf-style proxy, extracts a contour of its energy
//! field, renders one image, and then asks the simulated RAPL-capped
//! Broadwell package how the same contour behaves at 120 W vs 40 W.

use vizpower_suite::powersim::{CpuSpec, Package, Watts};
use vizpower_suite::vizalgo::{Algorithm, AlgorithmSpec, Filter};
use vizpower_suite::vizpower::characterize::characterize;
use vizpower_suite::vizpower::study::dataset_for;

fn main() {
    // 1. Produce data: the hydro proxy runs to the study's end time.
    println!("running the CloverLeaf proxy at 32^3 ...");
    let data = dataset_for(32);
    let (lo, hi) = data.field("energy").unwrap().scalar_range().unwrap();
    println!(
        "  energy field range: [{lo:.3}, {hi:.3}] over {} cells",
        data.num_cells()
    );

    // 2. Visualize: a 10-isovalue contour, exactly as the paper runs it
    //    (the paper-default spec from the algorithm registry).
    let contour = Algorithm::Contour.default_spec().build(&data);
    let out = contour.execute(&data);
    let surface = out.dataset.as_ref().unwrap();
    println!(
        "  contour extracted {} triangles / {} points",
        surface.num_cells(),
        surface.num_points()
    );

    // 3. Render one frame of the raw data for reference.
    let rt = AlgorithmSpec::RayTracing {
        field: "energy".into(),
        width: 200,
        height: 200,
        images: 1,
    }
    .build(&data);
    let frame = rt.execute(&data);
    let path = std::env::temp_dir().join("vizpower_quickstart.ppm");
    frame.images[0].save_ppm(&path, [1.0, 1.0, 1.0]).unwrap();
    println!("  wrote {}", path.display());

    // 4. Power study: run the measured contour workload on the simulated
    //    package at the default power and at the paper's severest cap.
    let spec = CpuSpec::broadwell_e5_2695v4();
    let workload = characterize("contour", &out.kernels, &spec);
    let base = Package::new(spec.clone()).run_capped(&workload, Watts(120.0));
    let capped = Package::new(spec).run_capped(&workload, Watts(40.0));
    println!("\n                 {:>10}  {:>10}", "120 W", "40 W");
    println!(
        "time             {:>9.3}s  {:>9.3}s   ({:.2}x slowdown for a 3x power cut)",
        base.seconds,
        capped.seconds,
        capped.seconds / base.seconds
    );
    println!(
        "avg power        {:>9.1}W  {:>9.1}W",
        base.avg_power_watts, capped.avg_power_watts
    );
    println!(
        "effective freq   {:>8.2}GHz {:>8.2}GHz",
        base.avg_effective_freq_ghz, capped.avg_effective_freq_ghz
    );
    println!(
        "IPC              {:>10.2}  {:>10.2}",
        base.avg_ipc, capped.avg_ipc
    );
    println!("\nContour is a power-opportunity algorithm: capping the");
    println!("processor to a third of TDP costs only a fraction of the time.");
}
