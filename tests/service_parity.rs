//! Differential parity for the study service: every response the
//! service produces — cold miss, same-batch coalesced, or warm cache
//! hit, at any worker count — carries an output byte-identical (by
//! `Debug` formatting) to a cold direct `AlgorithmSpec::build_with`
//! run of the same spec on the same dataset, on both backends.
//!
//! This is the license for the cache to exist at all: deduping two
//! requests onto one execution is only sound if a cached response is
//! indistinguishable from the execution it stands in for.

use std::collections::HashMap;

use vizpower_suite::powersim::trace::Journal;
use vizpower_suite::powersim::Watts;
use vizpower_suite::service::{Outcome, Request, ServiceConfig, StudyService};
use vizpower_suite::vizalgo::{Algorithm, Backend};
use vizpower_suite::vizpower::study::{dataset_for, StudyConfig};

const SIZE: usize = 8;

/// Small-but-structured study parameterization (mirrors the
/// registry-parity suite's sizes).
fn study_config() -> StudyConfig {
    StudyConfig {
        caps: vec![Watts(120.0), Watts(60.0)],
        isovalues: 4,
        render_px: 12,
        cameras: 2,
        particles: 25,
        advect_steps: 30,
    }
}

fn service_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        nodes: 2,
        workers,
        batch: 16,
        fleet_budget: Watts(180.0),
        shards: 4,
        study: study_config(),
        ..ServiceConfig::default()
    }
}

/// Every `(algorithm, backend, cap)` combination the study config can
/// express, duplicated so each batch also exercises the coalescing
/// path.
fn traffic() -> Vec<Request> {
    let config = study_config();
    let mut requests = Vec::new();
    for algorithm in Algorithm::ALL {
        for backend in Backend::ALL {
            if !backend.supports(algorithm) {
                continue;
            }
            for &cap in &config.caps {
                let req = Request {
                    spec: config.spec(algorithm),
                    size: SIZE,
                    cap,
                    backend,
                };
                requests.push(req.clone());
                requests.push(req);
            }
        }
    }
    requests
}

/// Cold reference: one direct, service-free execution per
/// `(algorithm, backend)`, Debug-formatted. The cap does not enter the
/// native output, so two caps per combination share one reference.
fn cold_references() -> HashMap<(Algorithm, Backend), String> {
    let config = study_config();
    let dataset = dataset_for(SIZE);
    let mut refs = HashMap::new();
    for algorithm in Algorithm::ALL {
        for backend in Backend::ALL {
            if !backend.supports(algorithm) {
                continue;
            }
            let spec = config.spec(algorithm);
            let out = spec.build_with(backend, &dataset).execute(&dataset);
            refs.insert((algorithm, backend), format!("{out:?}"));
        }
    }
    refs
}

#[test]
fn every_response_matches_a_cold_direct_run_at_any_worker_count() {
    let refs = cold_references();
    let traffic = traffic();
    for workers in [1usize, 4, 16] {
        let mut svc = StudyService::new(service_config(workers)).expect("valid config");
        let cold = svc
            .serve(&traffic, &mut Journal::off())
            .expect("traffic serves");
        // First pass: misses and coalesced only (nothing was resident).
        assert!(
            cold.responses.iter().all(|r| r.outcome != Outcome::Hit),
            "first serve cannot hit ({workers} workers)"
        );
        assert!(
            cold.responses
                .iter()
                .any(|r| r.outcome == Outcome::Coalesced),
            "duplicated traffic must coalesce ({workers} workers)"
        );
        for (req, resp) in traffic.iter().zip(&cold.responses) {
            let expected = &refs[&(req.spec.algorithm(), req.backend)];
            assert_eq!(
                &resp.result.output_debug,
                expected,
                "{:?}/{:?} via {:?} diverged from the cold direct run \
                 ({workers} workers)",
                req.spec.algorithm(),
                req.backend,
                resp.outcome,
            );
        }
        // Second pass: everything is resident; hits must still be
        // byte-identical to the cold reference.
        let warm = svc
            .serve(&traffic, &mut Journal::off())
            .expect("traffic serves again");
        for (req, resp) in traffic.iter().zip(&warm.responses) {
            assert_eq!(resp.outcome, Outcome::Hit, "warm pass must hit");
            let expected = &refs[&(req.spec.algorithm(), req.backend)];
            assert_eq!(
                &resp.result.output_debug,
                expected,
                "cache hit for {:?}/{:?} diverged ({workers} workers)",
                req.spec.algorithm(),
                req.backend,
            );
        }
    }
}

#[test]
fn coalesced_and_hit_responses_share_the_miss_allocation() {
    let traffic = traffic();
    let mut svc = StudyService::new(service_config(4)).expect("valid config");
    let cold = svc
        .serve(&traffic, &mut Journal::off())
        .expect("traffic serves");
    // Consecutive duplicates resolve to the same key and the same Arc.
    for pair in cold.responses.chunks(2) {
        assert_eq!(pair[0].key, pair[1].key);
        assert!(
            std::sync::Arc::ptr_eq(&pair[0].result, &pair[1].result),
            "duplicate requests must share one result allocation"
        );
    }
    let warm = svc
        .serve(&traffic, &mut Journal::off())
        .expect("traffic serves again");
    for (c, w) in cold.responses.iter().zip(&warm.responses) {
        assert!(
            std::sync::Arc::ptr_eq(&c.result, &w.result),
            "hits must reuse the originally computed allocation"
        );
    }
}
