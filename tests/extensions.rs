//! Integration tests for the beyond-the-paper extensions: the ninth
//! algorithm, the cross-architecture study, the energy view, the model
//! ablations, the phased power schedule, and the dual-socket node.

use vizpower_suite::powersim::{CpuSpec, KernelPhase, Node, Package, Watts, Workload};
use vizpower_suite::vizalgo::{Algorithm, Filter, Gradient};
use vizpower_suite::vizpower::characterize::characterize;
use vizpower_suite::vizpower::study::{dataset_for, native_run, CapSweep, StudyConfig, PAPER_CAPS};
use vizpower_suite::vizpower::{ablation, advisor, arch, classify, energy, PowerClass};

fn study_config() -> StudyConfig {
    StudyConfig {
        caps: PAPER_CAPS.to_vec(),
        isovalues: 4,
        render_px: 24,
        cameras: 3,
        particles: 150,
        advect_steps: 150,
    }
}

#[test]
fn gradient_classifies_as_power_opportunity() {
    let data = dataset_for(16);
    let out = Gradient::new("energy").execute(&data);
    let spec = CpuSpec::broadwell_e5_2695v4();
    let workload = characterize("gradient", &out.kernels, &spec);
    let rows = PAPER_CAPS
        .iter()
        .map(|&cap| Package::new(spec.clone()).run_capped(&workload, cap))
        .collect();
    let sweep = CapSweep {
        algorithm: Algorithm::Slice,
        size: 16,
        input_cells: data.num_cells(),
        rows,
    };
    assert_eq!(classify(&sweep.ratios()), PowerClass::PowerOpportunity);
    // Its stencil really computed something: output field exists.
    let result = out.dataset.unwrap();
    assert!(result.point_scalars("energy_gradmag").is_some());
}

#[test]
fn arch_study_keeps_the_class_split() {
    let config = study_config();
    let ds = dataset_for(12);
    let adv = native_run(&config, Algorithm::ParticleAdvection, 12, &ds);
    let thr = native_run(&config, Algorithm::Threshold, 12, &ds);
    for row in arch::compare_architectures(&adv) {
        assert_eq!(row.class, PowerClass::PowerSensitive, "{}", row.arch);
    }
    let broadwell_thr = &arch::compare_architectures(&thr)[0];
    assert_eq!(broadwell_thr.class, PowerClass::PowerOpportunity);
}

#[test]
fn ablations_change_the_expected_quantities() {
    let config = study_config();
    let ds = dataset_for(12);
    let run = native_run(&config, Algorithm::Contour, 12, &ds);
    // No memory cushion → T couples to F at the floor.
    let r = ablation::run_ablation(&run, &PAPER_CAPS, ablation::Ablation::NoMemoryCushion);
    let last = r.ablated.last().unwrap();
    assert!((last.tratio - last.fratio).abs() < 0.05);
    // No turbo → less frequency headroom to lose.
    let r = ablation::run_ablation(&run, &PAPER_CAPS, ablation::Ablation::NoTurbo);
    assert!(r.ablated.last().unwrap().fratio <= r.reference.last().unwrap().fratio);
}

#[test]
fn energy_view_is_consistent_with_ratios() {
    let config = study_config();
    let ds = dataset_for(12);
    let run = native_run(&config, Algorithm::ParticleAdvection, 12, &ds);
    let sweep =
        vizpower_suite::vizpower::study::sweep(&run, &PAPER_CAPS, &CpuSpec::broadwell_e5_2695v4());
    let rows = energy::energy_rows(&sweep);
    let ratios = sweep.ratios();
    for (e, r) in rows.iter().zip(&ratios) {
        // EDP ratio = eratio × tratio by definition.
        assert!(
            (e.edp_ratio - e.eratio * r.tratio).abs() < 1e-9,
            "EDP identity broken at {} W",
            e.cap_watts
        );
    }
}

#[test]
fn phased_schedule_respects_average_budget() {
    let sim = Workload::new("sim").with_phase(KernelPhase::compute("s", 400_000_000_000));
    let viz =
        Workload::new("viz").with_phase(KernelPhase::memory("v", 30_000_000_000, 700_000_000_000));
    let spec = CpuSpec::broadwell_e5_2695v4();
    let plan = advisor::schedule_phased(&sim, &viz, Watts(75.0), &spec);
    assert!(plan.avg_power_watts <= 75.0 + 1e-6);
    assert!(plan.total_seconds <= plan.static_seconds * (1.0 + 1e-9));
}

#[test]
fn dual_socket_node_halves_time_and_doubles_power() {
    let w = Workload::new("w").with_phase(KernelPhase::compute("c", 600_000_000_000));
    let single = Package::broadwell().run_capped(&w, Watts(120.0));
    let node = Node::rztopaz().run_capped(&w, Watts(120.0));
    assert!(node.seconds < single.seconds * 0.6);
    assert!(node.avg_power_watts > single.avg_power_watts * 1.6);
}
