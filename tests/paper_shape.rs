//! The reproduction's shape criteria (DESIGN.md §4): the qualitative
//! results of the paper, asserted end-to-end — real hydro data, real
//! algorithm executions, simulated power-capped processor — at reduced
//! scale so the suite stays fast.

use vizpower_suite::powersim::{CpuSpec, Watts};
use vizpower_suite::vizalgo::Algorithm;
use vizpower_suite::vizpower::study::{sweep, StudyConfig, StudyContext, PAPER_CAPS};
use vizpower_suite::vizpower::{classify, first_slowdown_cap, PowerClass};

fn quick_ctx() -> StudyContext {
    StudyContext::new(StudyConfig {
        caps: PAPER_CAPS.to_vec(),
        isovalues: 5,
        render_px: 64,
        cameras: 8,
        particles: 300,
        advect_steps: 250,
    })
}

const SIZE: usize = 16;

/// Criterion 2: the paper's two classes come out exactly.
#[test]
fn classes_match_the_paper() {
    let mut ctx = quick_ctx();
    for algorithm in Algorithm::ALL {
        let sweep = ctx.sweep(algorithm, SIZE);
        let class = classify(&sweep.ratios());
        let expected = match algorithm {
            Algorithm::ParticleAdvection | Algorithm::VolumeRendering => PowerClass::PowerSensitive,
            _ => PowerClass::PowerOpportunity,
        };
        assert_eq!(class, expected, "{algorithm} misclassified");
    }
}

/// Criterion 1 + 2: the sensitive algorithms slow down hard at 40 W
/// (advection worst, ≥ 1.7×), the opportunity algorithms stay under 2×.
#[test]
fn forty_watt_slowdowns_have_paper_magnitudes() {
    let mut ctx = quick_ctx();
    let mut at_40 = Vec::new();
    for algorithm in Algorithm::ALL {
        let sweep = ctx.sweep(algorithm, SIZE);
        let t40 = sweep.ratios().last().unwrap().tratio;
        at_40.push((algorithm, t40));
    }
    let t = |a: Algorithm| at_40.iter().find(|(x, _)| *x == a).unwrap().1;
    let advection = t(Algorithm::ParticleAdvection);
    assert!(advection >= 1.7, "advection T@40 = {advection}");
    // Advection has the worst (or tied-worst) slowdown, like Table II.
    for (a, v) in &at_40 {
        assert!(
            *v <= advection + 0.05,
            "{a} slows more than advection: {v} > {advection}"
        );
    }
    // The data-bound algorithms keep their §V-A cushion: slowdown well
    // below the 3x power reduction.
    for a in [Algorithm::Contour, Algorithm::Threshold, Algorithm::Slice] {
        assert!(t(a) < 2.0, "{a} T@40 = {}", t(a));
    }
}

/// Criterion 1: contour stays flat until severe caps (Table I).
#[test]
fn contour_is_flat_until_severe_caps() {
    let mut ctx = quick_ctx();
    let sweep = ctx.sweep(Algorithm::Contour, SIZE);
    let ratios = sweep.ratios();
    for r in &ratios {
        if r.cap_watts >= 60.0 {
            assert!(
                r.tratio < 1.10,
                "contour slowed at {} W: {}",
                r.cap_watts,
                r.tratio
            );
        }
    }
    // And the 40 W row is data intensive: Tratio < Pratio.
    let last = ratios.last().unwrap();
    assert!(last.data_intensive());
}

/// Criterion 2: the sensitive algorithms hit 10 % by 70–90 W.
#[test]
fn sensitive_algorithms_slow_down_early() {
    let mut ctx = quick_ctx();
    for algorithm in [Algorithm::ParticleAdvection, Algorithm::VolumeRendering] {
        let sweep = ctx.sweep(algorithm, SIZE);
        let cap = first_slowdown_cap(&sweep.ratios()).expect("must slow down");
        assert!(
            (70.0..=90.0).contains(&cap),
            "{algorithm} first slowdown at {cap} W"
        );
    }
}

/// Criterion 3: everything runs ≈ turbo uncapped; knees ordered by power.
#[test]
fn uncapped_frequency_is_turbo_for_everyone() {
    let mut ctx = quick_ctx();
    for algorithm in Algorithm::ALL {
        let sweep = ctx.sweep(algorithm, SIZE);
        let f = sweep
            .baseline()
            .expect("non-empty sweep")
            .avg_effective_freq_ghz;
        assert!(
            (2.55..=2.62).contains(&f),
            "{algorithm} uncapped frequency {f}"
        );
    }
}

/// Criterion 4: the IPC split of Fig. 2b.
#[test]
fn ipc_ordering_matches_fig2b() {
    let mut ctx = quick_ctx();
    let ipc = |ctx: &mut StudyContext, a: Algorithm| {
        ctx.sweep(a, SIZE)
            .baseline()
            .expect("non-empty sweep")
            .avg_ipc
    };
    let threshold = ipc(&mut ctx, Algorithm::Threshold);
    let contour = ipc(&mut ctx, Algorithm::Contour);
    let clip = ipc(&mut ctx, Algorithm::SphericalClip);
    let isovolume = ipc(&mut ctx, Algorithm::Isovolume);
    let volren = ipc(&mut ctx, Algorithm::VolumeRendering);
    let advection = ipc(&mut ctx, Algorithm::ParticleAdvection);

    // Data-bound class under 1.
    for (name, v) in [
        ("threshold", threshold),
        ("contour", contour),
        ("clip", clip),
        ("isovolume", isovolume),
    ] {
        assert!(v < 1.0, "{name} IPC = {v}");
    }
    // Threshold among the lowest.
    assert!(threshold <= contour + 0.05);
    // Compute-bound class above 1.8, advection the peak (paper: 2.68).
    assert!(volren > 1.8, "volren IPC = {volren}");
    assert!(advection > 2.2, "advection IPC = {advection}");
    assert!(advection > volren - 0.05);
    assert!(advection < 3.0, "IPC cannot exceed paper magnitudes wildly");
}

/// Criterion 5: LLC miss-rate ordering of Fig. 2c.
#[test]
fn llc_miss_ordering_matches_fig2c() {
    let mut ctx = quick_ctx();
    let miss = |ctx: &mut StudyContext, a: Algorithm| {
        ctx.sweep(a, SIZE)
            .baseline()
            .expect("non-empty sweep")
            .avg_llc_miss_rate
    };
    let isovolume = miss(&mut ctx, Algorithm::Isovolume);
    let advection = miss(&mut ctx, Algorithm::ParticleAdvection);
    let volren = miss(&mut ctx, Algorithm::VolumeRendering);
    for a in Algorithm::ALL {
        let m = miss(&mut ctx, a);
        assert!(
            m <= isovolume + 1e-9,
            "{a} miss rate {m} exceeds isovolume's {isovolume}"
        );
    }
    assert!(advection < 0.1, "advection miss rate {advection}");
    assert!(volren < 0.15, "volren miss rate {volren}");
}

/// Criterion 7 (Fig. 4): slice IPC rises with data size.
#[test]
fn slice_ipc_rises_with_size() {
    let mut ctx = quick_ctx();
    let small = ctx
        .sweep(Algorithm::Slice, 8)
        .baseline()
        .expect("non-empty sweep")
        .avg_ipc;
    let large = ctx
        .sweep(Algorithm::Slice, 20)
        .baseline()
        .expect("non-empty sweep")
        .avg_ipc;
    assert!(large > small * 1.05, "slice IPC {small} -> {large}");
}

/// Criterion 7 (Fig. 6): advection IPC is flat across sizes.
#[test]
fn advection_ipc_flat_with_size() {
    let mut ctx = quick_ctx();
    let small = ctx
        .sweep(Algorithm::ParticleAdvection, 8)
        .baseline()
        .expect("non-empty sweep")
        .avg_ipc;
    let large = ctx
        .sweep(Algorithm::ParticleAdvection, 20)
        .baseline()
        .expect("non-empty sweep")
        .avg_ipc;
    assert!(
        (small - large).abs() / small < 0.05,
        "advection IPC {small} vs {large}"
    );
}

/// Criterion 7 (Fig. 5): volume rendering IPC falls once the volume
/// exceeds the LLC. Tested with a reduced-LLC package so the capacity
/// effect triggers at test scale.
#[test]
fn volren_ipc_falls_past_llc_capacity() {
    let mut ctx = quick_ctx();
    let mut spec = CpuSpec::broadwell_e5_2695v4();
    // 150 kB LLC: the 24³ volume (~118 kB of doubles) fits, 48³ (~941 kB)
    // overflows ~6x — the same ratio 128³ vs 256³ has against 45 MB.
    spec.llc_bytes = 150 * 1024;
    let small_run = ctx.run(Algorithm::VolumeRendering, 24);
    let large_run = ctx.run(Algorithm::VolumeRendering, 48);
    let small = sweep(&small_run, &[Watts(120.0)], &spec)
        .baseline()
        .expect("non-empty sweep")
        .avg_ipc;
    let large = sweep(&large_run, &[Watts(120.0)], &spec)
        .baseline()
        .expect("non-empty sweep")
        .avg_ipc;
    assert!(
        large < small * 0.97,
        "volren IPC should fall past capacity: {small} -> {large}"
    );
}

/// Criterion 6: first-slowdown caps never move *down* dramatically with
/// size, and the compute-bound algorithms are size-insensitive
/// (§VII: "the change in data set size does not impact the power usage").
#[test]
fn sensitive_algorithms_unaffected_by_size() {
    let mut ctx = quick_ctx();
    for algorithm in [Algorithm::ParticleAdvection, Algorithm::VolumeRendering] {
        let small = ctx.sweep(algorithm, 8);
        let large = ctx.sweep(algorithm, 20);
        let c_small = first_slowdown_cap(&small.ratios()).unwrap();
        let c_large = first_slowdown_cap(&large.ratios()).unwrap();
        assert_eq!(c_small, c_large, "{algorithm} moved with size");
    }
}
