//! Golden tests for the conformance subsystem: the quick configuration
//! must pass every check, the check table itself is pinned (so checks
//! cannot silently disappear), and the journaled `conformance_check`
//! events must be valid schema-v3 lines that mirror the report.

use vizpower_suite::conformance::{self, CheckKind, ConformanceConfig};
use vizpower_suite::powersim::trace::{Event, Journal};
use vizpower_suite::vizalgo::Algorithm;

/// The full check inventory of a quick run, as `(algorithm, grid,
/// check-id)` triples. A new check extends this table; losing one is a
/// regression.
const EXPECTED_CHECKS: &[(&str, u32, &str)] = &[
    ("Contour", 16, "oracle:sphere-area"),
    ("Contour", 16, "oracle:sphere-watertight"),
    ("Contour", 16, "oracle:sphere-orientation"),
    ("Contour", 16, "oracle:sphere-genus"),
    ("Contour", 16, "differential:threads"),
    ("Contour", 16, "differential:mesh-exact"),
    ("Threshold", 16, "oracle:kept-cells"),
    ("Threshold", 16, "oracle:welded-points"),
    ("Threshold", 16, "differential:threads"),
    ("Threshold", 16, "differential:kept-count"),
    ("Spherical Clip", 16, "oracle:kept-volume"),
    ("Spherical Clip", 16, "oracle:outside-sphere"),
    ("Spherical Clip", 16, "differential:threads"),
    ("Spherical Clip", 16, "differential:whole-cells"),
    ("Isovolume", 16, "oracle:band-volume"),
    ("Isovolume", 16, "oracle:interior-hexes"),
    ("Isovolume", 16, "differential:threads"),
    ("Isovolume", 16, "differential:whole-cells"),
    ("Slice", 16, "oracle:slice-area"),
    ("Slice", 16, "oracle:on-plane"),
    ("Slice", 16, "differential:threads"),
    ("Slice", 16, "differential:mesh-exact"),
    ("Particle Advection", 16, "oracle:planar"),
    ("Particle Advection", 16, "oracle:radius-drift"),
    ("Particle Advection", 16, "oracle:angular-rate"),
    ("Particle Advection", 16, "differential:threads"),
    ("Particle Advection", 16, "differential:streamlines-exact"),
    ("Ray Tracing", 16, "oracle:hit-mask"),
    ("Ray Tracing", 16, "oracle:hit-depth"),
    ("Ray Tracing", 16, "oracle:background"),
    ("Ray Tracing", 16, "differential:threads"),
    ("Ray Tracing", 16, "differential:depth-brute-force"),
    ("Volume Rendering", 16, "oracle:background"),
    ("Volume Rendering", 16, "oracle:alpha-range"),
    ("Volume Rendering", 16, "oracle:coverage"),
    ("Volume Rendering", 16, "differential:threads"),
    ("Volume Rendering", 16, "differential:pixels-exact"),
    ("Contour", 32, "oracle:sphere-area"),
    ("Contour", 32, "oracle:sphere-watertight"),
    ("Contour", 32, "oracle:sphere-orientation"),
    ("Contour", 32, "oracle:sphere-genus"),
    ("Contour", 32, "differential:threads"),
    ("Contour", 32, "differential:mesh-exact"),
    ("Threshold", 32, "oracle:kept-cells"),
    ("Threshold", 32, "oracle:welded-points"),
    ("Threshold", 32, "differential:threads"),
    ("Threshold", 32, "differential:kept-count"),
    ("Spherical Clip", 32, "oracle:kept-volume"),
    ("Spherical Clip", 32, "oracle:outside-sphere"),
    ("Spherical Clip", 32, "differential:threads"),
    ("Spherical Clip", 32, "differential:whole-cells"),
    ("Isovolume", 32, "oracle:band-volume"),
    ("Isovolume", 32, "oracle:interior-hexes"),
    ("Isovolume", 32, "differential:threads"),
    ("Isovolume", 32, "differential:whole-cells"),
    ("Slice", 32, "oracle:slice-area"),
    ("Slice", 32, "oracle:on-plane"),
    ("Slice", 32, "differential:threads"),
    ("Slice", 32, "differential:mesh-exact"),
    ("Particle Advection", 32, "oracle:planar"),
    ("Particle Advection", 32, "oracle:radius-drift"),
    ("Particle Advection", 32, "oracle:angular-rate"),
    ("Particle Advection", 32, "differential:threads"),
    ("Particle Advection", 32, "differential:streamlines-exact"),
    ("Ray Tracing", 32, "oracle:hit-mask"),
    ("Ray Tracing", 32, "oracle:hit-depth"),
    ("Ray Tracing", 32, "oracle:background"),
    ("Ray Tracing", 32, "differential:threads"),
    ("Volume Rendering", 32, "oracle:background"),
    ("Volume Rendering", 32, "oracle:alpha-range"),
    ("Volume Rendering", 32, "oracle:coverage"),
    ("Volume Rendering", 32, "differential:threads"),
    ("Volume Rendering", 32, "differential:pixels-exact"),
    ("Spherical Clip", 32, "metamorphic:clip-complement"),
    ("Isovolume", 32, "metamorphic:interior-threshold"),
    ("Contour", 32, "metamorphic:isovalue-monotone"),
    ("Contour", 64, "metamorphic:refinement-order"),
    ("Particle Advection", 32, "oracle:pathline-planar"),
    ("Particle Advection", 32, "oracle:pathline-radius-drift"),
    ("Particle Advection", 32, "oracle:pathline-angle"),
    (
        "Particle Advection",
        32,
        "metamorphic:frozen-pathline-exact",
    ),
];

#[test]
fn quick_run_passes_every_pinned_check() {
    let report = conformance::run_all(&ConformanceConfig::quick());
    let failures: Vec<String> = report
        .failures()
        .map(|c| {
            format!(
                "{} {} {}: measured {} expected {} tol {}",
                c.algorithm.name(),
                c.grid,
                c.check,
                c.measured,
                c.expected,
                c.tolerance
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "failed checks:\n{}",
        failures.join("\n")
    );

    let got: Vec<(String, u32, String)> = report
        .checks
        .iter()
        .map(|c| (c.algorithm.name().to_string(), c.grid, c.check.clone()))
        .collect();
    let expected: Vec<(String, u32, String)> = EXPECTED_CHECKS
        .iter()
        .map(|&(a, g, c)| (a.to_string(), g, c.to_string()))
        .collect();
    assert_eq!(got, expected, "conformance check table drifted");
}

#[test]
fn every_algorithm_is_covered_by_every_kind() {
    let report = conformance::run_all(&ConformanceConfig::quick());
    for alg in Algorithm::ALL {
        for kind in [CheckKind::Oracle, CheckKind::Differential] {
            assert!(
                report
                    .checks
                    .iter()
                    .any(|c| c.algorithm == alg && c.kind == kind),
                "{} has no {} check",
                alg.name(),
                kind.as_str()
            );
        }
    }
    assert!(report
        .checks
        .iter()
        .any(|c| c.kind == CheckKind::Metamorphic));
}

#[test]
fn journaled_checks_mirror_the_report() {
    let mut journal = Journal::with_capacity(1 << 14);
    let report = conformance::run_journaled(&ConformanceConfig::quick(), &mut journal);
    assert_eq!(journal.dropped(), 0);

    let events: Vec<_> = journal
        .events()
        .filter_map(|e| match e {
            Event::ConformanceCheck(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(events.len(), report.checks.len());
    for (ev, c) in events.iter().zip(&report.checks) {
        assert_eq!(ev.algorithm, c.algorithm.name());
        assert_eq!(ev.check, c.check);
        assert_eq!(ev.kind, c.kind.as_str());
        assert_eq!(ev.grid, c.grid);
        assert!(ev.pass, "journaled failure for {}", ev.check);
    }

    // One span per group, named conformance:<algorithm>:<grid>.
    let spans = journal
        .events()
        .filter(|e| {
            matches!(e, Event::Span(s) if s.scope == vizpower_suite::powersim::trace::Scope::Conformance)
        })
        .count();
    assert_eq!(
        spans,
        2 * 8 + 4 + 2,
        "one span per algorithm-grid, metamorphic, and flow group"
    );

    for line in journal.to_jsonl().lines().take(4) {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        assert_eq!(v["v"], 8);
    }
}
