//! Parity: registry-built filters reproduce the pre-refactor direct
//! constructions exactly. Each test inlines the construction code that
//! `vizpower::study::build_filter` / `conformance::build_filter` used
//! before the `AlgorithmSpec` registry existed, runs both filters on the
//! same input, and requires byte-identical Debug-formatted outputs —
//! geometry, fields, images, and instrumented work counters alike.
//!
//! ROADMAP tier-1 triage: any golden re-pin downstream of the registry
//! must be licensed by these tests staying green.

use vizpower_suite::conformance::{
    self, fields, ConformanceConfig, ISO_HI, ISO_LO, SPHERE_R, THRESH_HI, THRESH_LO,
};
use vizpower_suite::vizalgo::{
    Algorithm, Contour, Filter, Isovolume, ParticleAdvection, RayTracer, SphericalClip, ThreeSlice,
    Threshold, VolumeRenderer,
};
use vizpower_suite::vizmesh::DataSet;
use vizpower_suite::vizpower::study::{dataset_for, StudyConfig};

fn study_config() -> StudyConfig {
    StudyConfig {
        caps: vec![],
        isovalues: 4,
        render_px: 12,
        cameras: 2,
        particles: 25,
        advect_steps: 30,
    }
}

/// `vizpower::study::build_filter` exactly as it read before the
/// registry refactor.
fn pre_refactor_study_filter(
    config: &StudyConfig,
    algorithm: Algorithm,
    input: &DataSet,
) -> Box<dyn Filter> {
    match algorithm {
        Algorithm::Contour => Box::new(Contour::spanning("energy", input, config.isovalues)),
        Algorithm::Threshold => Box::new(Threshold::upper_fraction("energy", input, 0.5)),
        Algorithm::SphericalClip => Box::new(SphericalClip::framing(input)),
        Algorithm::Isovolume => Box::new(Isovolume::middle_band("energy", input, 0.5)),
        Algorithm::Slice => Box::new(ThreeSlice::centered(input, "energy")),
        Algorithm::ParticleAdvection => Box::new(ParticleAdvection::new(
            "velocity",
            config.particles,
            config.advect_steps,
            5e-4,
            0x5eed_1234,
        )),
        Algorithm::RayTracing => Box::new(RayTracer::new(
            "energy",
            config.render_px,
            config.render_px,
            config.cameras,
        )),
        Algorithm::VolumeRendering => Box::new(VolumeRenderer::new(
            "energy",
            config.render_px,
            config.render_px,
            config.cameras,
        )),
    }
}

/// `conformance::build_filter` exactly as it read before the registry
/// refactor.
fn pre_refactor_conformance_filter(
    alg: Algorithm,
    cfg: &ConformanceConfig,
    input: &DataSet,
) -> Box<dyn Filter> {
    let px = cfg.render_px;
    match alg {
        Algorithm::Contour => Box::new(Contour::new(fields::FIELD, vec![SPHERE_R])),
        Algorithm::Threshold => Box::new(Threshold::new(fields::FIELD, THRESH_LO, THRESH_HI)),
        Algorithm::SphericalClip => Box::new(SphericalClip::new(fields::CENTER, SPHERE_R)),
        Algorithm::Isovolume => Box::new(Isovolume::new(fields::FIELD, ISO_LO, ISO_HI)),
        Algorithm::Slice => Box::new(ThreeSlice::centered(input, fields::FIELD)),
        Algorithm::ParticleAdvection => Box::new(ParticleAdvection::new(
            fields::VELOCITY,
            cfg.particles,
            cfg.advect_steps,
            cfg.step_fraction,
            cfg.seed,
        )),
        Algorithm::RayTracing => Box::new(RayTracer::new(fields::FIELD, px, px, cfg.cameras)),
        Algorithm::VolumeRendering => {
            Box::new(VolumeRenderer::new(fields::FIELD, px, px, cfg.cameras))
        }
    }
}

fn assert_outputs_identical(a: Box<dyn Filter>, b: Box<dyn Filter>, input: &DataSet, label: &str) {
    let old = a.execute(input);
    let new = b.execute(input);
    assert_eq!(
        format!("{old:?}"),
        format!("{new:?}"),
        "{label}: registry-built output diverges from the pre-refactor construction"
    );
}

#[test]
fn study_specs_match_pre_refactor_build_filter() {
    let config = study_config();
    let input = dataset_for(8);
    for algorithm in Algorithm::ALL {
        let old = pre_refactor_study_filter(&config, algorithm, &input);
        let new = config.spec(algorithm).build(&input);
        assert_outputs_identical(old, new, &input, &format!("study/{algorithm}"));
    }
}

#[test]
fn conformance_specs_match_pre_refactor_build_filter() {
    let cfg = ConformanceConfig::quick();
    let n = cfg.grids[0];
    for algorithm in Algorithm::ALL {
        let input = match algorithm {
            Algorithm::Contour | Algorithm::SphericalClip => fields::sphere_dataset(n),
            Algorithm::ParticleAdvection => fields::rotation_dataset(n),
            _ => fields::xramp_dataset(n),
        };
        let old = pre_refactor_conformance_filter(algorithm, &cfg, &input);
        let new = conformance::spec_for(algorithm, &cfg).build(&input);
        assert_outputs_identical(old, new, &input, &format!("conformance/{algorithm}"));
    }
}
