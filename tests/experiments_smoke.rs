//! Smoke tests of the full reproduction harness: every table and figure
//! regenerates (at reduced scale) with well-formed output.

use vizpower_suite::vizalgo::Algorithm;
use vizpower_suite::vizpower::experiments::{self, FigMetric};
use vizpower_suite::vizpower::report;
use vizpower_suite::vizpower::study::{StudyConfig, StudyContext, PAPER_CAPS};

fn ctx() -> StudyContext {
    StudyContext::new(StudyConfig {
        caps: PAPER_CAPS.to_vec(),
        isovalues: 3,
        render_px: 12,
        cameras: 2,
        particles: 25,
        advect_steps: 30,
    })
}

#[test]
fn table1_regenerates_with_nine_rows() {
    let mut ctx = ctx();
    let sweep = experiments::table1(&mut ctx, 10);
    assert_eq!(sweep.rows.len(), 9);
    let text = report::render_table1(&sweep);
    for cap in ["120W", "80W", "40W"] {
        assert!(text.contains(cap), "missing {cap} in:\n{text}");
    }
}

#[test]
fn tables_2_and_3_regenerate_for_all_algorithms() {
    let mut ctx = ctx();
    let t2 = experiments::slowdown_table(&mut ctx, 8);
    let t3 = experiments::slowdown_table(&mut ctx, 12);
    assert_eq!(t2.len(), 8);
    assert_eq!(t3.len(), 8);
    let text = report::render_slowdown_table(&t2);
    for a in Algorithm::ALL {
        assert!(text.contains(a.name()), "missing {a} in table");
    }
}

#[test]
fn all_three_fig2_metrics_regenerate() {
    let mut ctx = ctx();
    for metric in [
        FigMetric::EffectiveFrequency,
        FigMetric::Ipc,
        FigMetric::LlcMissRate,
    ] {
        let series = experiments::fig2(&mut ctx, 8, metric);
        assert_eq!(series.len(), 8);
        for s in &series {
            assert_eq!(s.points.len(), 9);
            assert!(s.points.iter().all(|&(cap, v)| cap >= 40.0 && v >= 0.0));
        }
    }
}

#[test]
fn fig3_rates_are_finite_and_positive() {
    let mut ctx = ctx();
    let series = experiments::fig3(&mut ctx, 8);
    assert_eq!(series.len(), 5);
    for s in &series {
        for &(_, rate) in &s.points {
            assert!(rate.is_finite() && rate > 0.0);
        }
    }
    let text = report::render_series("Fig 3", &series);
    assert!(text.contains("Fig 3"));
}

#[test]
fn size_figures_regenerate_per_size_series() {
    let mut ctx = ctx();
    for algorithm in [
        Algorithm::Slice,
        Algorithm::VolumeRendering,
        Algorithm::ParticleAdvection,
    ] {
        let series = experiments::fig_size_ipc(&mut ctx, algorithm, &[8, 10]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 9);
    }
}

#[test]
fn reproduction_is_deterministic() {
    let run = || {
        let mut ctx = ctx();
        let sweep = experiments::table1(&mut ctx, 8);
        sweep
            .rows
            .iter()
            .map(|r| (r.seconds, r.energy_joules))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn summaries_name_all_algorithms() {
    let mut ctx = ctx();
    for sweep in experiments::slowdown_table(&mut ctx, 8) {
        let line = report::summarize(&sweep);
        assert!(line.contains(sweep.algorithm.name()));
        assert!(line.contains("Tratio(40W)"));
    }
}
