//! End-to-end integration: hydro → in situ pipelines → characterization →
//! simulated power execution → advisor, across crate boundaries.

use vizpower_suite::cloverleaf::Problem;
use vizpower_suite::insitu::{
    Action, ActionList, FilterSpec, InSituRuntime, RendererSpec, RuntimeConfig, Trigger,
};
use vizpower_suite::powersim::{CpuSpec, Package, Watts};
use vizpower_suite::vizalgo::IsoValues;
use vizpower_suite::vizalgo::KernelClass;
use vizpower_suite::vizpower::advisor;
use vizpower_suite::vizpower::characterize::characterize;

fn actions() -> ActionList {
    ActionList(vec![
        Action::AddPipeline {
            name: "contour".into(),
            filters: vec![FilterSpec::Contour {
                field: "energy".into(),
                isovalues: IsoValues::Spanning(4),
            }],
        },
        Action::AddPipeline {
            name: "streams".into(),
            filters: vec![FilterSpec::ParticleAdvection {
                field: "velocity".into(),
                particles: 30,
                steps: 40,
                step_fraction: 5e-4,
                seed: 0x5eed_1234,
                scenario: Default::default(),
            }],
        },
        Action::AddScene {
            name: "db".into(),
            renderer: RendererSpec::RayTracing {
                field: "energy".into(),
                width: 16,
                height: 16,
                images: 3,
            },
        },
    ])
}

#[test]
fn coupled_run_records_both_sides() {
    let config = RuntimeConfig {
        grid_cells: 10,
        total_steps: 12,
        trigger: Trigger::EveryN { n: 4 },
    };
    let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
    let run = rt.run();
    assert_eq!(run.cycles.len(), 3);
    for cycle in &run.cycles {
        assert_eq!(cycle.sim_work.class, KernelClass::Simulation);
        assert!(cycle.sim_work.work.instructions > 0);
        // Pipelines: contour (2 kernels) + advection (1) + scene (3).
        assert!(cycle.viz_kernels.len() >= 5);
        assert_eq!(cycle.images.len(), 3);
        for img in &cycle.images {
            assert!(img.coverage() > 0.0, "empty rendered frame");
        }
    }
}

#[test]
fn characterized_insitu_work_runs_under_caps() {
    let config = RuntimeConfig {
        grid_cells: 8,
        total_steps: 8,
        trigger: Trigger::EveryN { n: 4 },
    };
    let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
    let run = rt.run();
    let spec = CpuSpec::broadwell_e5_2695v4();
    let viz_reports: Vec<_> = run
        .cycles
        .iter()
        .flat_map(|c| c.viz_kernels.iter().cloned())
        .collect();
    let workload = characterize("viz", &viz_reports, &spec);
    assert!(!workload.is_empty());

    let uncapped = Package::new(spec.clone()).run_capped(&workload, Watts(120.0));
    let capped = Package::new(spec).run_capped(&workload, Watts(40.0));
    assert!(uncapped.seconds > 0.0);
    assert!(capped.seconds >= uncapped.seconds);
    assert!(capped.avg_power_watts <= 41.0);
    assert!(uncapped.avg_power_watts <= 120.0);
}

#[test]
fn advisor_end_to_end_gives_power_to_the_bottleneck() {
    // A realistic in situ balance: many simulation steps per
    // visualization cycle, so the hydro dominates (the paper's 10–20 %
    // viz share).
    let config = RuntimeConfig {
        grid_cells: 12,
        total_steps: 40,
        trigger: Trigger::EveryN { n: 20 },
    };
    let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
    let run = rt.run();
    let spec = CpuSpec::broadwell_e5_2695v4();
    let sim_reports: Vec<_> = run.cycles.iter().map(|c| c.sim_work.clone()).collect();
    let viz_reports: Vec<_> = run
        .cycles
        .iter()
        .flat_map(|c| c.viz_kernels.iter().cloned())
        .collect();
    let sim = characterize("sim", &sim_reports, &spec);
    let viz = characterize("viz", &viz_reports, &spec);
    let plan = advisor::allocate(&sim, &viz, Watts(150.0), &spec);
    assert!(plan.improvement() >= 1.0);
    assert!(plan.sim_cap_watts + plan.viz_cap_watts <= 150.0 + 1e-9);
    // The advisor gives at least the naive share to whichever side is
    // slower at the uniform split — here the simulation.
    let naive_cap = Watts(75.0);
    let t_sim = advisor::predict_seconds(&sim, naive_cap, &spec);
    let t_viz = advisor::predict_seconds(&viz, naive_cap, &spec);
    if t_sim > t_viz * 1.05 {
        assert!(
            plan.sim_cap_watts >= plan.viz_cap_watts,
            "bottleneck sim got {} W vs viz {} W",
            plan.sim_cap_watts,
            plan.viz_cap_watts
        );
    } else if t_viz > t_sim * 1.05 {
        assert!(plan.viz_cap_watts >= plan.sim_cap_watts);
    }
}

#[test]
fn actions_json_round_trip_through_runtime() {
    let json = actions().to_json();
    let parsed = ActionList::from_json(&json).unwrap();
    assert_eq!(parsed, actions());
    // And the parsed copy drives a runtime identically.
    let config = RuntimeConfig {
        grid_cells: 8,
        total_steps: 4,
        trigger: Trigger::EveryN { n: 4 },
    };
    let run_a = InSituRuntime::new(Problem::TwoState, config.clone(), parsed).run();
    let run_b = InSituRuntime::new(Problem::TwoState, config, actions()).run();
    assert_eq!(run_a.cycles.len(), run_b.cycles.len());
    assert_eq!(
        run_a.cycles[0].sim_work.work.instructions,
        run_b.cycles[0].sim_work.work.instructions
    );
}
