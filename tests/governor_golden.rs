//! Golden tests for the closed-loop governor's 32³ budget sweep: the
//! journal must be byte-identical across runs and rayon thread counts,
//! every journaled decision must respect the node budget and hardware
//! cap range, and the Reactive policy must beat the Uniform baseline on
//! pair completion time at every budget at or below 160 W (the regime
//! where the uniform split leaves the simulation power-starved).

use vizpower_suite::governor::{self, BudgetSweep};
use vizpower_suite::powersim::trace::{Event, Journal, Scope};
use vizpower_suite::powersim::{CpuSpec, Watts};

fn spec() -> CpuSpec {
    CpuSpec::broadwell_e5_2695v4()
}

/// Run the 32³ budget sweep under a private `num_threads` rayon pool,
/// returning the sweep table and the serialized journal.
fn run_sweep(threads: usize) -> (BudgetSweep, String) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let mut journal = Journal::with_capacity(1 << 16);
        let sweep = governor::budget_sweep(32, &spec(), &mut journal);
        assert_eq!(journal.dropped(), 0, "golden run must not drop events");
        (sweep, journal.to_jsonl())
    })
}

#[test]
fn budget_sweep_table_and_policy_ordering() {
    let (sweep, jsonl) = run_sweep(2);
    assert_eq!(sweep.rows.len(), 36, "9 budgets x 4 policies");
    assert!(!jsonl.is_empty());

    for budget in governor::budgets() {
        let seconds = |policy: &str| {
            sweep
                .row(budget, policy)
                .map(|r| r.seconds)
                .unwrap_or(f64::NAN)
        };
        let uniform = seconds("uniform");
        let advisor = seconds("static-advisor");
        let reactive = seconds("reactive");
        let oracle = seconds("oracle");
        // The acceptance bar: closed-loop reactive strictly beats the
        // naive split whenever the budget actually constrains the pair.
        if budget <= Watts(160.0) {
            assert!(
                reactive < uniform,
                "at {budget} W: reactive {reactive} !< uniform {uniform}"
            );
        } else {
            assert!(
                reactive <= uniform * (1.0 + 1e-9),
                "at {budget} W: reactive {reactive} > uniform {uniform}"
            );
        }
        // The oracle is the best *static* split: it bounds the static
        // policies (reactive may beat it via retirement reassignment).
        assert!(
            oracle <= uniform * (1.0 + 1e-9),
            "at {budget} W: oracle {oracle} > uniform {uniform}"
        );
        assert!(
            oracle <= advisor * (1.0 + 1e-9),
            "at {budget} W: oracle {oracle} > static-advisor {advisor}"
        );
        // No policy's node power ever exceeded the budget in any window.
        for policy in ["uniform", "static-advisor", "reactive", "oracle"] {
            let row = sweep.row(budget, policy).expect("row present");
            assert!(
                row.max_window_power_watts <= budget + Watts(0.5),
                "{policy} at {budget} W drew {} W in a window",
                row.max_window_power_watts
            );
            assert!(row.seconds > 0.0 && row.decisions > 0);
        }
    }
}

#[test]
fn journal_is_byte_identical_across_runs_and_thread_counts() {
    let (_, first) = run_sweep(1);
    let (_, again) = run_sweep(1);
    assert_eq!(first, again, "repeat run must match byte-for-byte");
    let (_, pooled) = run_sweep(4);
    assert_eq!(first, pooled, "thread count must not change the journal");
}

#[test]
fn every_journaled_decision_respects_budget_and_cap_range() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("build rayon pool");
    let journal = pool.install(|| {
        let mut journal = Journal::with_capacity(1 << 16);
        let _ = governor::budget_sweep(32, &spec(), &mut journal);
        journal
    });
    let spec = spec();
    let lo = spec.min_cap_watts;
    let hi = spec.tdp_watts;

    let mut decisions = 0u64;
    let mut governor_spans = 0u64;
    for e in journal.events() {
        match e {
            Event::PolicyDecision(d) => {
                decisions += 1;
                // Observed node power never exceeds the decision's budget.
                assert!(
                    d.sim_power_watts + d.viz_power_watts <= d.budget_watts + Watts(0.5),
                    "window power {} + {} over budget {}",
                    d.sim_power_watts,
                    d.viz_power_watts,
                    d.budget_watts
                );
                // Caps are 0 W (retired side) or inside the hardware
                // range, and active caps fit the budget.
                let mut active_total = Watts::ZERO;
                for cap in [d.sim_cap_watts, d.viz_cap_watts] {
                    if cap > Watts(1e-9) {
                        assert!(
                            cap >= lo - Watts(1e-9) && cap <= hi + Watts(1e-9),
                            "cap {cap} outside [{lo}, {hi}]"
                        );
                        active_total += cap;
                    }
                }
                assert!(
                    active_total <= d.budget_watts + Watts(1e-9),
                    "caps {active_total} exceed budget {}",
                    d.budget_watts
                );
            }
            Event::Span(s) if s.scope == Scope::Governor => governor_spans += 1,
            _ => {}
        }
    }
    assert!(decisions > 100, "sweep produced only {decisions} decisions");
    assert_eq!(governor_spans, 36, "one governor span per (budget, policy)");
}

#[test]
fn uniform_policy_first_decision_is_the_even_split() {
    let spec = spec();
    let pair = governor::coupled_pair(16, &spec);
    for budget in [Watts(100.0), Watts(160.0), Watts(220.0)] {
        let mut journal = Journal::with_capacity(1 << 14);
        let _ = governor::govern(
            &pair,
            &mut governor::Uniform::new(),
            budget,
            &spec,
            &mut journal,
        );
        let first = journal
            .events()
            .find_map(|e| match e {
                Event::PolicyDecision(d) => Some(*d),
                _ => None,
            })
            .expect("at least one decision");
        let per = (budget / 2.0).clamp(spec.min_cap_watts, spec.tdp_watts);
        assert_eq!(first.sim_cap_watts, per);
        assert_eq!(first.viz_cap_watts, per);
    }
}
