//! Golden pin of the `reproduce serve --quick` study-service run: the
//! exact Zipfian traffic, classification counts, per-node totals, and
//! rendered report, plus byte-identical journals across worker counts
//! and the v8 journal span/event structure.
//!
//! Anything that moves these numbers — traffic sampler, placement hash,
//! admission clamp, cache keying, wave packing, power model — is a
//! behavioral change and must re-pin deliberately (tier-1 triage rule:
//! kernel/model changes land with their golden re-pin in the same
//! commit).

use vizpower_suite::powersim::trace::Journal;
use vizpower_suite::service::{universe, zipf_traffic, ServiceConfig, StudyService, TrafficConfig};
use vizpower_suite::vizpower::StudyConfig;
use vizpower_suite::{powersim::Watts, service::Request};

/// The exact traffic `reproduce serve --quick` generates.
fn quick_traffic() -> (ServiceConfig, Vec<Request>) {
    let cfg = ServiceConfig {
        study: StudyConfig::quick(),
        ..ServiceConfig::default()
    };
    let all = universe(
        &cfg.study,
        &[8, 12],
        &[Watts(120.0), Watts(80.0), Watts(40.0)],
    );
    let traffic = zipf_traffic(
        &all,
        TrafficConfig {
            requests: 400,
            zipf_s: 1.1,
            seed: cfg.seed,
        },
    );
    (cfg, traffic)
}

#[test]
fn quick_serve_report_is_pinned() {
    let (cfg, traffic) = quick_traffic();
    assert_eq!(traffic.len(), 400);
    let mut svc = StudyService::new(cfg).expect("valid config");
    let out = svc
        .serve(&traffic, &mut Journal::off())
        .expect("traffic serves");
    let r = &out.report;
    assert_eq!(
        (r.hits, r.misses, r.coalesced),
        (296, 58, 46),
        "classification counts moved: {r:?}"
    );
    assert_eq!(r.batches, 7);
    assert_eq!(r.per_node_jobs, vec![18, 8, 15, 17]);
    assert_eq!(r.per_node_requests, vec![32, 19, 26, 27]);
    assert!(
        r.hit_rate() >= 0.5,
        "acceptance gate: quick zipfian traffic must hit >= 50% (got {:.3})",
        r.hit_rate()
    );
    assert_eq!(
        r.render(),
        "study service: 400 requests in 7 batches over 4 nodes \
         (budget 360 W fleet, 90 W/node)\n\
         \x20 outcomes: 296 hits (74.0%), 58 misses, 46 coalesced\n\
         \x20 modeled: 0.067 s total, 5932.7 req/s, latency p50 0.000 s \
         p95 0.011 s p99 0.021 s\n\
         \x20 peak window: 90.0 W across 1 jobs on node 2 (budget 90 W)\n\
         \x20 node  jobs  requests\n\
         \x20    0    18        32\n\
         \x20    1     8        19\n\
         \x20    2    15        26\n\
         \x20    3    17        27\n"
    );
}

#[test]
fn journals_are_byte_identical_across_worker_counts_and_repeats() {
    let serve_with = |workers: usize| {
        let (cfg, traffic) = quick_traffic();
        let mut svc = StudyService::new(ServiceConfig { workers, ..cfg }).expect("valid config");
        let mut journal = Journal::with_capacity(1 << 16);
        let out = svc.serve(&traffic, &mut journal).expect("traffic serves");
        (format!("{:?}", out.report), journal.to_jsonl())
    };
    let (report1, journal1) = serve_with(1);
    let (report4, journal4) = serve_with(4);
    let (report16, journal16) = serve_with(16);
    assert_eq!(report1, report4, "report must not depend on worker count");
    assert_eq!(report1, report16);
    assert_eq!(
        journal1, journal4,
        "journal must not depend on worker count"
    );
    assert_eq!(journal1, journal16);
    let (report_again, journal_again) = serve_with(4);
    assert_eq!(report4, report_again, "repeat runs replay identically");
    assert_eq!(journal4, journal_again);
}

#[test]
fn journal_carries_the_v8_service_schema() {
    let (cfg, traffic) = quick_traffic();
    let mut svc = StudyService::new(cfg).expect("valid config");
    let mut journal = Journal::with_capacity(1 << 16);
    svc.serve(&traffic, &mut journal).expect("traffic serves");
    let jsonl = journal.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    // 400 cache events + 400 service requests + 7 batch spans + rollup.
    assert_eq!(lines.len(), 808, "event count moved");
    let mut cache_events = 0usize;
    let mut service_requests = 0usize;
    let mut spans = 0usize;
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        assert_eq!(v["v"], 8, "schema version on every line: {line}");
        match v["ev"].as_str().expect("ev field") {
            "cache_event" => {
                cache_events += 1;
                for field in ["spec_fp", "data_fp", "cap_watts", "shard"] {
                    assert!(v[field].is_number(), "cache_event.{field}: {line}");
                }
                assert!(
                    matches!(
                        v["outcome"].as_str(),
                        Some("hit" | "miss" | "coalesced" | "evict")
                    ),
                    "{line}"
                );
            }
            "service_request" => {
                service_requests += 1;
                assert!(v["algorithm"].is_string(), "{line}");
                assert!(
                    matches!(v["backend"].as_str(), Some("traditional" | "dpp")),
                    "{line}"
                );
                assert!(v["latency_seconds"].is_number(), "{line}");
                assert!(v["node"].is_number(), "{line}");
            }
            "span" => {
                spans += 1;
                assert_eq!(v["scope"], "service", "only service spans here: {line}");
            }
            other => panic!("unexpected event kind {other}: {line}"),
        }
    }
    assert_eq!(cache_events, 400);
    assert_eq!(service_requests, 400);
    assert_eq!(spans, 8);
    assert!(jsonl.contains("\"name\":\"batch:0\""));
    assert!(jsonl.contains("\"name\":\"batch:6\""));
    assert!(jsonl.contains("\"name\":\"serve:400\""));
    // Chrome export keeps the service track addressable.
    let chrome = journal.to_chrome_trace();
    assert!(chrome.contains("\"name\":\"service\""));
    assert!(chrome.contains("cache:miss"));
    assert!(chrome.contains("cache:hit"));
}
