//! Golden determinism tests for the run journal: a fixed-configuration
//! 32³ contour sweep must serialize byte-identically across repeated
//! runs and across rayon thread counts, every JSONL line must be valid
//! JSON, and the span energy rollup must be exact (see
//! docs/OBSERVABILITY.md for the contract).

use vizpower_suite::powersim::trace::{Event, Scope};
use vizpower_suite::powersim::{Joules, Watts};
use vizpower_suite::vizalgo::Algorithm;
use vizpower_suite::vizpower::study::{StudyConfig, StudyContext};

fn config() -> StudyConfig {
    StudyConfig {
        caps: vec![Watts(120.0), Watts(40.0)],
        isovalues: 3,
        render_px: 10,
        cameras: 2,
        particles: 15,
        advect_steps: 25,
    }
}

/// Run the 32³ contour sweep under a private `num_threads` rayon pool
/// and return the serialized journal.
fn journal_jsonl(threads: usize) -> String {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let mut ctx = StudyContext::new(config());
        ctx.enable_journal(1 << 16);
        let _ = ctx.sweep(Algorithm::Contour, 32);
        assert_eq!(ctx.journal.dropped(), 0, "golden run must not drop events");
        ctx.journal.to_jsonl()
    })
}

#[test]
fn journal_is_byte_identical_across_runs_and_thread_counts() {
    let first = journal_jsonl(1);
    assert!(!first.is_empty());
    assert_eq!(
        first,
        journal_jsonl(1),
        "repeat run must match byte-for-byte"
    );
    assert_eq!(
        first,
        journal_jsonl(4),
        "thread count must not change the journal"
    );
}

#[test]
fn every_jsonl_line_is_valid_versioned_json() {
    let jsonl = journal_jsonl(2);
    let mut lines = 0;
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert_eq!(v["v"], 8, "schema version on every line: {line}");
        assert_eq!(v["seq"], lines, "dense sequence numbers: {line}");
        assert!(v["ev"].is_string(), "event kind on every line: {line}");
        lines += 1;
    }
    assert!(lines > 0);
}

#[test]
fn kernel_spans_sum_exactly_to_their_workload_and_sweep_rows() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("build rayon pool");
    let (journal, sweep) = pool.install(|| {
        let mut ctx = StudyContext::new(config());
        ctx.enable_journal(1 << 16);
        let sweep = ctx.sweep(Algorithm::Contour, 32);
        (ctx.journal.clone(), sweep)
    });

    // Spans of one scope that carry an energy rollup (`dataset:`/`native:`
    // study spans model no energy and are skipped).
    let spans_of = |scope: Scope| -> Vec<(String, Joules)> {
        journal
            .events()
            .filter_map(|e| match e {
                Event::Span(s) if s.scope == scope => s.joules.map(|j| (s.name.clone(), j)),
                _ => None,
            })
            .collect()
    };

    // One workload span per cap, each the exact sum of its kernel spans.
    let workloads = spans_of(Scope::Workload);
    let kernels = spans_of(Scope::Kernel);
    assert_eq!(workloads.len(), sweep.rows.len());
    assert!(kernels.len() >= workloads.len());
    let kernel_total: Joules = kernels.iter().map(|(_, j)| *j).sum();
    let workload_total: Joules = workloads.iter().map(|(_, j)| *j).sum();
    assert_eq!(kernel_total, workload_total);

    // Sweep-row spans mirror the returned rows exactly, cap by cap.
    let rows = spans_of(Scope::Sweep);
    assert_eq!(rows.len(), sweep.rows.len());
    for ((name, joules), row) in rows.iter().zip(&sweep.rows) {
        assert_eq!(name, &format!("cap:{:.0}W", row.cap_watts.value()));
        assert_eq!(*joules, row.energy_joules);
    }
    let row_total: Joules = sweep.rows.iter().map(|r| r.energy_joules).sum();
    assert_eq!(workload_total, row_total);

    // And the study-phase span rolls the whole sweep up.
    let study = spans_of(Scope::Study);
    let sweep_span = study
        .iter()
        .find(|(name, _)| name.starts_with("sweep:"))
        .expect("sweep study span present");
    assert_eq!(sweep_span.1, row_total);
}
