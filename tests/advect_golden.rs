//! Golden determinism and coverage tests for the advection scenario
//! sweep (`reproduce advect --quick`): the journal must serialize
//! byte-identically across rayon thread counts, every line must carry
//! the v8 schema, and the sweep report must pin the scenario matrix —
//! at least two seedings × two terminations × both flow modes.

use std::collections::BTreeSet;

use vizpower_suite::powersim::trace::{Event, Journal, Scope};
use vizpower_suite::vizpower::advect::{self, AdvectConfig, AdvectReport};

/// Run the quick sweep under a private `num_threads` rayon pool.
fn sweep(threads: usize) -> (String, AdvectReport) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let mut journal = Journal::with_capacity(1 << 16);
        let report = advect::run_sweep(&AdvectConfig::quick(), &mut journal);
        assert_eq!(journal.dropped(), 0, "golden run must not drop events");
        (journal.to_jsonl(), report)
    })
}

#[test]
fn advect_journal_is_byte_identical_across_thread_counts() {
    let (first, _) = sweep(1);
    assert!(!first.is_empty());
    assert_eq!(first, sweep(4).0, "4 threads must match byte-for-byte");
    assert_eq!(first, sweep(16).0, "16 threads must match byte-for-byte");
}

#[test]
fn every_line_is_v8_and_scenario_spans_are_zero_width() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("build rayon pool");
    let (journal, report) = pool.install(|| {
        let mut journal = Journal::with_capacity(1 << 16);
        let report = advect::run_sweep(&AdvectConfig::quick(), &mut journal);
        (journal, report)
    });
    for line in journal.to_jsonl().lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert_eq!(v["v"], 8, "schema version on every line: {line}");
    }
    let scenario_spans: Vec<_> = journal
        .events()
        .filter_map(|e| match e {
            Event::Span(s) if s.scope == Scope::FlowScenario => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(
        scenario_spans.len(),
        report.rows.len(),
        "one flow_scenario span per sweep row"
    );
    for (span, row) in scenario_spans.iter().zip(&report.rows) {
        assert_eq!(span.name, format!("scenario:{}", row.scenario.label()));
        assert_eq!(span.t0, span.t1, "scenario spans are zero-width markers");
        let arg = |key: &str| {
            span.args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .expect("scenario span arg present")
        };
        assert_eq!(arg("spec_fp"), row.spec_fp as f64);
        assert_eq!(arg("data_fp"), row.data_fp as f64);
        assert_eq!(arg("lines"), row.lines as f64);
        assert_eq!(arg("points"), row.points as f64);
    }
}

#[test]
fn sweep_report_pins_the_scenario_matrix() {
    let (_, report) = sweep(2);
    // The hydro ran past step 200 with a bounded ring: it must have
    // both retained a multi-snapshot window and evicted older ones.
    assert!(report.snapshots >= 2);
    assert!(report.evicted > 0, "ring must have evicted past capacity");
    assert!(report.span.1 > report.span.0);
    // Matrix coverage: ≥ 2 seedings × ≥ 2 terminations × both modes.
    let modes: BTreeSet<_> = report
        .rows
        .iter()
        .map(|r| r.scenario.mode.wire_name())
        .collect();
    let seedings: BTreeSet<_> = report
        .rows
        .iter()
        .map(|r| r.scenario.seeding.wire_name())
        .collect();
    let terms: BTreeSet<_> = report
        .rows
        .iter()
        .map(|r| r.scenario.termination.wire_name())
        .collect();
    assert_eq!(modes.len(), 2, "both flow modes present");
    assert!(seedings.len() >= 2, "at least two seedings: {seedings:?}");
    assert!(terms.len() >= 2, "at least two terminations: {terms:?}");
    // Every cell keys distinctly on spec_fp and shares the window's
    // data_fp — the invariants the service cache relies on.
    let fps: BTreeSet<u64> = report.rows.iter().map(|r| r.spec_fp).collect();
    assert_eq!(fps.len(), report.rows.len());
    assert!(report
        .rows
        .iter()
        .all(|r| r.data_fp == report.rows[0].data_fp));
    for row in &report.rows {
        assert!(row.lines > 0, "{} produced no lines", row.scenario.label());
        assert!(row.points >= 2 * row.lines, "degenerate polylines");
    }
}
