//! Umbrella crate for the `vizpower` workspace.
//!
//! This package hosts the workspace-level examples (`examples/`) and
//! integration tests (`tests/`). The re-exports below give examples and
//! downstream users a single import surface over the individual crates:
//!
//! * [`vizmesh`] — the structured-mesh data model (grids, fields, images).
//! * [`cloverleaf`] — the hydrodynamics proxy that produces the data.
//! * [`vizalgo`] — the eight visualization algorithms under study.
//! * [`powersim`] — the simulated RAPL-capped Broadwell processor.
//! * [`insitu`] — the Ascent-like in situ coupling framework.
//! * [`vizpower`] — the power/performance study itself (phases, metrics,
//!   classification, the power advisor, and the table/figure harness).
//! * [`governor`] — the closed-loop online power governor and its
//!   budget-sweep study.
//! * [`service`] — the study service at scale: fingerprint-addressed
//!   single-flight result cache, deterministic sharded batch scheduler,
//!   and governor-backed admission control under a fleet power budget.
//! * [`conformance`] — the analytic-oracle conformance suite verifying
//!   the eight kernels against closed-form answers.

pub use cloverleaf;
pub use conformance;
pub use governor;
pub use insitu;
pub use powersim;
pub use service;
pub use vizalgo;
pub use vizmesh;
pub use vizpower;
