#!/bin/bash
# Build + run unit tests (lib --test) for the hot-path crates, the
# integration/golden tests from tests/, the property suites under the
# stub proptest (deterministic seeds, no shrinking), and reproduce smoke
# runs, under the stub deps compiled by build.sh (run that first).
# Tier-1 CI reruns everything with the real crates.io dependencies.
set -e
R="$(cd "$(dirname "$0")/../.." && pwd)"
W="${WSCHECK_DIR:-/tmp/wscheck-run}"
cd "$W"
E="--edition 2021 -O -L dependency=out"
EXT="--extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
 --extern cloverleaf=out/libcloverleaf.rlib --extern powersim=out/libpowersim.rlib \
 --extern insitu=out/libinsitu.rlib --extern vizpower=out/libvizpower.rlib \
 --extern governor=out/libgovernor.rlib --extern service=out/libservice.rlib \
 --extern conformance=out/libconformance.rlib \
 --extern rayon=out/librayon.rlib --extern serde_json=out/libserde_json.rlib \
 --extern rand=out/librand.rlib"

T() { name=$1; src=$2; echo "=== unit: $name ==="; \
  rustc $E --test --crate-name ${name}_t $src $EXT -o out/${name}_t && out/${name}_t -q; }

T vizmesh src/vizmesh/lib.rs
echo "=== unit: vizalgo (serde round-trips skipped under stub) ==="
rustc $E --test --crate-name vizalgo_t src/vizalgo/lib.rs $EXT -o out/vizalgo_t
out/vizalgo_t -q --skip serde_round_trip
T powersim src/powersim/lib.rs
T cloverleaf src/cloverleaf/lib.rs
echo "=== unit: insitu (serde round-trips skipped under stub) ==="
rustc $E --test --crate-name insitu_t src/insitu/lib.rs $EXT -o out/insitu_t
out/insitu_t -q --skip json_round_trip --skip parses_handwritten_json --skip serde_round_trip
T vizpower src/vizpower/lib.rs
T governor src/governor/lib.rs
T service src/service/lib.rs
T conformance src/conformance/lib.rs
T vizpower_bench src/bench/lib.rs
echo "=== unit: xtask (std-only) ==="
rustc $E --test --crate-name xtask_t src/xtask/lib.rs -o out/xtask_t && out/xtask_t -q

# xtask's golden/lexer/analyze suites: include_str! fixtures resolve
# relative to the test source, so copy tests/ (with fixtures/) wholesale;
# env!("CARGO_BIN_EXE_xtask") is baked in at compile time.
XG() { name=$1; echo "=== xtask golden: $name ==="; \
  mkdir -p src/xtask_tests; cp -r "$R/crates/xtask/tests/." src/xtask_tests/; \
  CARGO_BIN_EXE_xtask="$W/out/xtask" rustc $E --test --crate-name xtask_$name \
    src/xtask_tests/$name.rs --extern xtask=out/libxtask.rlib -o out/xtask_$name && \
  out/xtask_$name -q; }

XG golden
XG lexer
XG analyze

I() { name=$1; echo "=== integration: $name ==="; \
  mkdir -p src/roottests; cp "$R/tests/$name.rs" src/roottests/; \
  rustc $E --test --crate-name $name src/roottests/$name.rs \
    --extern vizpower_suite=out/libvizpower_suite.rlib $EXT -o out/$name && out/$name -q; }

I journal_golden
I experiments_smoke
I governor_golden
I conformance_golden
I registry_parity
I service_parity
I service_golden
I advect_golden

# Property suites from crates/*/tests/, compiled and run against the
# stub proptest (fixed per-test seeds, no shrinking or regression-seed
# replay). insitu's actions_json_round_trip needs real serde and is
# compile-checked but skipped at runtime.
P() { crate=$1; name=$2; skip=$3; echo "=== proptest: $crate/$name ==="; \
  mkdir -p src/proptests; cp "$R/crates/$crate/tests/$name.rs" src/proptests/${crate}_$name.rs; \
  rustc $E --test --crate-name ${crate}_$name src/proptests/${crate}_$name.rs \
    --extern proptest=out/libproptest.rlib $EXT -o out/${crate}_$name && \
  out/${crate}_$name -q $skip; }

P vizmesh proptests
P vizalgo proptests
P vizalgo dpp_proptests
P cloverleaf proptests
P powersim proptests
P insitu proptests "--skip actions_json_round_trip"
P governor invariants
P service invariants

echo "=== smoke: reproduce serve --quick (gate: >= 50% cache hit rate) ==="
out/reproduce serve --quick | tee out/serve_quick.txt
hit_pct=$(sed -n 's/.*outcomes: [0-9]* hits (\([0-9]*\)\.[0-9]*%).*/\1/p' out/serve_quick.txt)
test -n "$hit_pct" && test "$hit_pct" -ge 50 || { echo "serve --quick hit rate below 50% (got ${hit_pct:-none})"; exit 1; }
echo "=== smoke: reproduce governor --budget-sweep --quick ==="
out/reproduce governor --budget-sweep --quick
echo "=== smoke: reproduce conformance --quick ==="
out/reproduce conformance --quick
echo "=== smoke: reproduce conformance --quick --backend dpp ==="
out/reproduce conformance --quick --backend dpp
echo "=== smoke: reproduce bench --quick ==="
out/reproduce bench --quick --out out/bench_quick.json
echo "=== smoke: reproduce bench --quick --backend both (DPP comparison) ==="
out/reproduce bench --quick --backend both --algo contour,threshold,isovolume,slice --out out/bench_dpp_quick.json
echo "=== smoke: reproduce advect --quick (time-varying scenario sweep) ==="
out/reproduce advect --quick
echo "=== smoke: xtask lint + analyze --ratchet against the repo ==="
out/xtask lint --root "$R"
out/xtask analyze --ratchet --root "$R"
echo "=== ALL TESTS PASSED ==="
