#!/bin/bash
# Offline compile-check of the whole workspace against the stub deps in
# stubs/ (sequential rayon, mini serde_json, xorshift rand; serde derives
# are stripped from copied sources). For sandboxes with no crates.io
# access — see tools/wscheck/README.md. Not a substitute for tier-1
# `cargo build && cargo test`, which CI runs with the real dependencies.
set -e
R="$(cd "$(dirname "$0")/../.." && pwd)"
W="${WSCHECK_DIR:-/tmp/wscheck-run}"
S="$R/tools/wscheck/stubs"
mkdir -p "$W"
cd "$W"
rm -rf src out
mkdir -p src out

echo "=== stub deps ==="
rustc --edition 2021 -O --crate-type rlib --crate-name rayon "$S/rayon.rs" -o out/librayon.rlib
rustc --edition 2021 -O --crate-type rlib --crate-name serde_json "$S/serde_json.rs" -o out/libserde_json.rlib
rustc --edition 2021 -O --crate-type rlib --crate-name rand "$S/rand.rs" -o out/librand.rlib
rustc --edition 2021 -O --crate-type rlib --crate-name proptest "$S/proptest.rs" -o out/libproptest.rlib

# Copy a crate's src tree with serde derives stripped.
copysrc() { # $1 = repo-relative src dir, $2 = dest name
  mkdir -p "src/$2"
  cp -r "$R/$1"/* "src/$2/"
  find "src/$2" -name '*.rs' | while read -r f; do
    sed -i \
      -e '/^use serde::/d' \
      -e 's/, Serialize, Deserialize)/)/' \
      -e 's/(Serialize, Deserialize, /(/' \
      -e 's/Serialize, Deserialize, //' \
      -e '/#\[serde(/d' \
      "$f"
  done
}

copysrc crates/vizmesh/src vizmesh
copysrc crates/powersim/src powersim
copysrc crates/vizalgo/src vizalgo
copysrc crates/cloverleaf/src cloverleaf
copysrc crates/insitu/src insitu
copysrc crates/core/src vizpower
copysrc crates/governor/src governor
copysrc crates/service/src service
copysrc crates/conformance/src conformance
copysrc crates/bench/src bench
copysrc crates/xtask/src xtask
copysrc src suite

# rayon's 2-arg reduce has no std equivalent; sequential fold is identical here.
sed -i 's/\.reduce(|| 0\.0, f64::max)/.fold(0.0, f64::max)/' src/cloverleaf/kernels.rs

E="--edition 2021 -O -L dependency=out"
X() { echo "--- $1 ---"; shift; rustc $E "$@"; }

X vizmesh   --crate-type rlib --crate-name vizmesh src/vizmesh/lib.rs -o out/libvizmesh.rlib
X powersim  --crate-type rlib --crate-name powersim src/powersim/lib.rs -o out/libpowersim.rlib
X vizalgo   --crate-type rlib --crate-name vizalgo src/vizalgo/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern rayon=out/librayon.rlib \
  --extern rand=out/librand.rlib -o out/libvizalgo.rlib
X cloverleaf --crate-type rlib --crate-name cloverleaf src/cloverleaf/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern powersim=out/libpowersim.rlib \
  --extern rayon=out/librayon.rlib -o out/libcloverleaf.rlib
X insitu    --crate-type rlib --crate-name insitu src/insitu/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern cloverleaf=out/libcloverleaf.rlib --extern powersim=out/libpowersim.rlib \
  --extern serde_json=out/libserde_json.rlib -o out/libinsitu.rlib
X vizpower  --crate-type rlib --crate-name vizpower src/vizpower/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern cloverleaf=out/libcloverleaf.rlib --extern powersim=out/libpowersim.rlib \
  --extern insitu=out/libinsitu.rlib --extern serde_json=out/libserde_json.rlib \
  -o out/libvizpower.rlib
X governor  --crate-type rlib --crate-name governor src/governor/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern cloverleaf=out/libcloverleaf.rlib --extern powersim=out/libpowersim.rlib \
  --extern insitu=out/libinsitu.rlib --extern vizpower=out/libvizpower.rlib \
  -o out/libgovernor.rlib
X service   --crate-type rlib --crate-name service src/service/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern powersim=out/libpowersim.rlib --extern vizpower=out/libvizpower.rlib \
  --extern governor=out/libgovernor.rlib -o out/libservice.rlib
X conformance --crate-type rlib --crate-name conformance src/conformance/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern powersim=out/libpowersim.rlib --extern rayon=out/librayon.rlib \
  --extern rand=out/librand.rlib -o out/libconformance.rlib
X vizpower_bench --crate-type rlib --crate-name vizpower_bench src/bench/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern cloverleaf=out/libcloverleaf.rlib --extern powersim=out/libpowersim.rlib \
  --extern insitu=out/libinsitu.rlib --extern vizpower=out/libvizpower.rlib \
  --extern serde_json=out/libserde_json.rlib -o out/libvizpower_bench.rlib
X reproduce-bin --crate-name reproduce src/bench/bin/reproduce.rs \
  --extern vizpower_bench=out/libvizpower_bench.rlib \
  --extern vizpower=out/libvizpower.rlib --extern powersim=out/libpowersim.rlib \
  --extern governor=out/libgovernor.rlib --extern service=out/libservice.rlib \
  --extern conformance=out/libconformance.rlib \
  --extern cloverleaf=out/libcloverleaf.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern insitu=out/libinsitu.rlib --extern vizmesh=out/libvizmesh.rlib \
  --extern serde_json=out/libserde_json.rlib -o out/reproduce
# xtask is std-only by design: no stub externs needed.
X xtask --crate-type rlib --crate-name xtask src/xtask/lib.rs -o out/libxtask.rlib
X xtask-bin --crate-name xtask src/xtask/main.rs \
  --extern xtask=out/libxtask.rlib -o out/xtask
X vizpower_suite --crate-type rlib --crate-name vizpower_suite src/suite/lib.rs \
  --extern vizmesh=out/libvizmesh.rlib --extern vizalgo=out/libvizalgo.rlib \
  --extern cloverleaf=out/libcloverleaf.rlib --extern powersim=out/libpowersim.rlib \
  --extern insitu=out/libinsitu.rlib --extern vizpower=out/libvizpower.rlib \
  --extern governor=out/libgovernor.rlib --extern service=out/libservice.rlib \
  --extern conformance=out/libconformance.rlib \
  --extern rayon=out/librayon.rlib --extern serde_json=out/libserde_json.rlib \
  -o out/libvizpower_suite.rlib

echo "=== all rlibs + reproduce bin compiled ==="
