//! Compile-check stand-in for rand: deterministic xorshift, f64 ranges only.

pub mod rngs {
    pub struct StdRng(pub(crate) u64);
}

pub trait SeedableRng {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}
