//! Minimal offline stand-in for the `proptest` crate, covering exactly
//! the API surface the workspace's property suites use: `proptest!`,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `Just`, `any::<bool>()`,
//! range/tuple/regex-literal strategies, `prop::collection::vec`, and
//! `prop::array::uniform4`.
//!
//! Cases are generated from a fixed per-test xorshift seed, so runs are
//! deterministic. There is NO shrinking and NO `proptest-regressions`
//! replay — a failure panics with the generated values in the assert
//! message instead of a minimized counterexample. Tier-1 CI runs the
//! same suites under the real crate; this stub exists so they compile
//! and execute in sandboxes with no crates.io access.

pub mod test_runner {
    /// xorshift64* PRNG; deterministic per test, no system entropy.
    pub struct Rng(u64);

    impl Rng {
        pub fn from_name(name: &str) -> Rng {
            // FNV-1a over the test name; fixed basis keeps runs stable.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n == 0` yields 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Only the `cases` knob is honoured.
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Value generator. Unlike the real trait there is no value tree:
    /// `generate` draws a sample directly and nothing shrinks.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            self.0.generate(rng)
        }
    }

    /// `prop_oneof!` support: pick one arm uniformly.
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    /// String-literal strategies for the one regex family the suites
    /// use: a single character class with a `{lo,hi}` repetition, e.g.
    /// `"[a-z]{1,8}"`. Anything else is an explicit unsupported panic.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            let (class, lo, hi) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("stub proptest: unsupported regex {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class_src, rest) = rest.split_once(']')?;
        let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = reps.split_once(',')?;
        let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
        let mut class = Vec::new();
        let mut chars = class_src.chars().peekable();
        while let Some(c) = chars.next() {
            if chars.peek() == Some(&'-') {
                chars.next();
                let end = chars.next()?;
                (c..=end).for_each(|x| class.push(x));
            } else {
                class.push(c);
            }
        }
        (!class.is_empty() && lo <= hi).then_some((class, lo, hi))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut Rng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut Rng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut Rng) -> u64 {
            rng.next_u64()
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut Rng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Run each property as a plain `#[test]`: draw `cases` samples from the
/// strategies and execute the body. Failures panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
                for _case in 0..cfg.cases {
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::generate(&$strat, &mut rng),)+);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}
