//! Compile-only serde_json stand-in with a real minimal parser for
//! `Value` (enough for the journal golden test); other target types fail
//! at runtime.

use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        matches!(self, Value::Number(n) if *n == *other as f64)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(n) if *n == *other as f64)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

pub fn from_str<T: 'static>(s: &str) -> Result<T, Error> {
    if TypeId::of::<T>() == TypeId::of::<Value>() {
        let v = parse(s)?;
        let boxed: Box<dyn Any> = Box::new(v);
        return match boxed.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(_) => Err(Error("downcast".into())),
        };
    }
    Err(Error("stub: only Value parses".into()))
}

pub fn to_string<T>(_v: &T) -> Result<String, Error> {
    Err(Error("stub: no serialization".into()))
}

pub fn to_string_pretty<T>(_v: &T) -> Result<String, Error> {
    Err(Error("stub: no serialization".into()))
}

fn parse(s: &str) -> Result<Value, Error> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    let v = parse_value(&chars, &mut i)?;
    skip_ws(&chars, &mut i);
    if i != chars.len() {
        return Err(Error(format!("trailing input at {i}")));
    }
    Ok(v)
}

fn skip_ws(c: &[char], i: &mut usize) {
    while *i < c.len() && c[*i].is_whitespace() {
        *i += 1;
    }
}

fn expect(c: &[char], i: &mut usize, ch: char) -> Result<(), Error> {
    if c.get(*i) == Some(&ch) {
        *i += 1;
        Ok(())
    } else {
        Err(Error(format!("expected {ch} at {i}", i = *i)))
    }
}

fn parse_value(c: &[char], i: &mut usize) -> Result<Value, Error> {
    skip_ws(c, i);
    match c.get(*i) {
        Some('{') => {
            *i += 1;
            let mut m = BTreeMap::new();
            skip_ws(c, i);
            if c.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(Value::Object(m));
            }
            loop {
                skip_ws(c, i);
                let k = parse_string(c, i)?;
                skip_ws(c, i);
                expect(c, i, ':')?;
                let v = parse_value(c, i)?;
                m.insert(k, v);
                skip_ws(c, i);
                match c.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(Value::Object(m));
                    }
                    _ => return Err(Error(format!("bad object at {i}", i = *i))),
                }
            }
        }
        Some('[') => {
            *i += 1;
            let mut a = Vec::new();
            skip_ws(c, i);
            if c.get(*i) == Some(&']') {
                *i += 1;
                return Ok(Value::Array(a));
            }
            loop {
                a.push(parse_value(c, i)?);
                skip_ws(c, i);
                match c.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(Value::Array(a));
                    }
                    _ => return Err(Error(format!("bad array at {i}", i = *i))),
                }
            }
        }
        Some('"') => Ok(Value::String(parse_string(c, i)?)),
        Some('t') => keyword(c, i, "true", Value::Bool(true)),
        Some('f') => keyword(c, i, "false", Value::Bool(false)),
        Some('n') => keyword(c, i, "null", Value::Null),
        Some(_) => parse_number(c, i),
        None => Err(Error("unexpected end".into())),
    }
}

fn keyword(c: &[char], i: &mut usize, word: &str, v: Value) -> Result<Value, Error> {
    for ch in word.chars() {
        expect(c, i, ch)?;
    }
    Ok(v)
}

fn parse_string(c: &[char], i: &mut usize) -> Result<String, Error> {
    expect(c, i, '"')?;
    let mut out = String::new();
    while let Some(&ch) = c.get(*i) {
        *i += 1;
        match ch {
            '"' => return Ok(out),
            '\\' => {
                let esc = c.get(*i).copied().ok_or_else(|| Error("bad escape".into()))?;
                *i += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = c[*i..(*i + 4).min(c.len())].iter().collect();
                        *i += 4;
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|e| Error(e.to_string()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(Error(format!("bad escape \\{other}"))),
                }
            }
            other => out.push(other),
        }
    }
    Err(Error("unterminated string".into()))
}

fn parse_number(c: &[char], i: &mut usize) -> Result<Value, Error> {
    let start = *i;
    while let Some(&ch) = c.get(*i) {
        if ch.is_ascii_digit() || "+-.eE".contains(ch) {
            *i += 1;
        } else {
            break;
        }
    }
    let text: String = c[start..*i].iter().collect();
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|e| Error(format!("bad number `{text}`: {e}")))
}
