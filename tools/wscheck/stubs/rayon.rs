//! Compile-only sequential stand-in for rayon: parallel iterators are
//! plain std iterators, pools run inline.

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelBridge,
        ParallelIterator,
    };
}

pub mod iter {
    pub trait ParallelIterator: Iterator + Sized {}
    impl<T: Iterator> ParallelIterator for T {}

    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }
    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;
        fn par_iter(&'a self) -> Self::Iter;
    }
    impl<'a, I: 'a + ?Sized> IntoParallelRefIterator<'a> for I
    where
        &'a I: IntoIterator,
    {
        type Iter = <&'a I as IntoIterator>::IntoIter;
        type Item = <&'a I as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }
    impl<'a, I: 'a + ?Sized> IntoParallelRefMutIterator<'a> for I
    where
        &'a mut I: IntoIterator,
    {
        type Iter = <&'a mut I as IntoIterator>::IntoIter;
        type Item = <&'a mut I as IntoIterator>::Item;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait ParallelBridge: Sized {
        fn par_bridge(self) -> Self {
            self
        }
    }
    impl<T: Iterator + Sized> ParallelBridge for T {}
}

pub struct ThreadPool;
impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;
impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("stub pool")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder;
impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder
    }
    pub fn num_threads(self, _n: usize) -> Self {
        self
    }
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

pub fn current_num_threads() -> usize {
    1
}

pub fn join<RA, RB>(a: impl FnOnce() -> RA, b: impl FnOnce() -> RB) -> (RA, RB) {
    (a(), b())
}
